"""Statistical defect injection (paper Sections H-3, I).

A diagnosis *trial* is: pick a circuit instance (one Monte-Carlo sample =
one chip), inject a defect drawn from the single-defect model, apply the
pattern set on the tester at cut-off ``clk``, and record the failing
behavior matrix ``B``.  This module produces such trials; the observed
matrices then feed the diagnosis algorithms.

A trial whose behavior matrix is all-zero is not a *failing* chip — there
is nothing to diagnose and the paper's success-rate protocol implicitly
conditions on observed failures.  :func:`draw_failing_trial` redraws
(instance, defect) pairs until at least one failure is observed, recording
how many draws were needed (the escape rate is itself reported by the
ablation benches: small defects through short paths escape — Figure 1's
argument).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..atpg.patterns import PatternPairSet
from ..timing.instance import CircuitTiming
from .faultsim import behavior_matrix
from .model import InjectedDefect, SingleDefectModel

__all__ = ["DiagnosisTrial", "draw_trial", "draw_failing_trial"]


@dataclass
class DiagnosisTrial:
    """One injected-defect experiment: the ground truth plus the observation.

    ``behavior`` is the 0-1 failing behavior matrix ``B`` of Algorithm E.1
    (rows = primary outputs, columns = patterns).  ``defect`` and
    ``sample_index`` are the hidden ground truth the diagnosis must recover.
    """

    timing: CircuitTiming
    patterns: PatternPairSet
    clk: float
    defect: InjectedDefect
    sample_index: int
    behavior: np.ndarray

    @property
    def failing(self) -> bool:
        return bool(self.behavior.any())

    @property
    def n_failing_observations(self) -> int:
        return int(self.behavior.sum())


def draw_trial(
    timing: CircuitTiming,
    patterns: PatternPairSet,
    clk: float,
    defect_model: SingleDefectModel,
    rng: np.random.Generator,
    defect: Optional[InjectedDefect] = None,
    sample_index: Optional[int] = None,
) -> DiagnosisTrial:
    """One injection trial; defect/instance drawn unless supplied."""
    if defect is None:
        defect = defect_model.draw(rng)
    if sample_index is None:
        sample_index = int(rng.integers(timing.space.n_samples))
    behavior = behavior_matrix(timing, patterns, clk, defect, sample_index)
    return DiagnosisTrial(timing, patterns, clk, defect, sample_index, behavior)


def draw_failing_trial(
    timing: CircuitTiming,
    patterns: PatternPairSet,
    clk: float,
    defect_model: SingleDefectModel,
    rng: np.random.Generator,
    max_attempts: int = 50,
    defect: Optional[InjectedDefect] = None,
) -> Tuple[DiagnosisTrial, int]:
    """Redraw until the chip actually fails; returns (trial, attempts).

    With a fixed ``defect`` only the chip instance and the per-instance
    size realization are redrawn.  Raises ``RuntimeError`` when no failing
    trial is found within ``max_attempts`` — the defect is effectively
    untestable by this pattern set at this clock.
    """
    for attempt in range(1, max_attempts + 1):
        trial = draw_trial(timing, patterns, clk, defect_model, rng, defect=defect)
        if trial.failing:
            return trial, attempt
    raise RuntimeError(
        f"no failing behavior in {max_attempts} injection attempts; "
        "the pattern set cannot expose this defect population at this clk"
    )
