"""Statistical delay fault simulation (paper Section H-3).

Simulates what the *tester* observes: a specific chip (one Monte-Carlo
sample) carrying a specific defect, measured at cut-off period ``clk``
against a two-vector pattern set.  Also provides the population view —
per-pattern failure probabilities under an injected defect — used by the
evaluation harness and the figure experiments.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..atpg.patterns import PatternPairSet
from ..timing.dynamic import simulate_transition
from ..timing.instance import CircuitTiming
from .model import InjectedDefect

__all__ = ["behavior_matrix", "population_error_matrix", "escape_probability"]


def behavior_matrix(
    timing: CircuitTiming,
    patterns: PatternPairSet,
    clk: float,
    defect: Optional[InjectedDefect],
    sample_index: int,
) -> np.ndarray:
    """The 0-1 failing behavior matrix ``B`` for one chip (Algorithm E.1).

    ``B[i, j] = 1`` iff primary output ``i`` fails pattern ``j``: the output
    has a sensitized transition whose settle time exceeds ``clk`` on this
    instance.  ``defect=None`` simulates the healthy chip.
    """
    circuit = timing.circuit
    extra = None
    if defect is not None:
        extra = {defect.edge_index: defect.size_on_instance(sample_index)}
    rows = len(circuit.outputs)
    matrix = np.zeros((rows, len(patterns)), dtype=np.int8)
    for column, (v1, v2) in enumerate(patterns):
        sim = simulate_transition(
            timing, v1, v2, extra_delay=extra, sample_index=sample_index
        )
        matrix[:, column] = sim.output_failures(clk)[:, 0]
    return matrix


def population_error_matrix(
    timing: CircuitTiming,
    patterns: PatternPairSet,
    clk: float,
    defect: Optional[InjectedDefect] = None,
) -> np.ndarray:
    """``Err_M(D_s(C), TP, clk)``: per-output/pattern critical probabilities
    over the whole chip population carrying ``defect`` (or none)."""
    extra = {defect.edge_index: defect.size_samples} if defect is not None else None
    columns = []
    for v1, v2 in patterns:
        sim = simulate_transition(timing, v1, v2, extra_delay=extra)
        columns.append(sim.error_vector(clk))
    if not columns:
        return np.zeros((len(timing.circuit.outputs), 0))
    return np.stack(columns, axis=1)


def escape_probability(
    timing: CircuitTiming,
    patterns: PatternPairSet,
    clk: float,
    defect: InjectedDefect,
) -> float:
    """Fraction of defective chips that pass every pattern (test escapes).

    Quantifies Figure 1's point: a defect detected only through short paths
    escapes when its size is small relative to the slack.
    """
    extra = {defect.edge_index: defect.size_samples}
    escaped = np.ones(timing.space.n_samples, dtype=bool)
    for v1, v2 in patterns:
        sim = simulate_transition(timing, v1, v2, extra_delay=extra)
        escaped &= ~sim.output_failures(clk).any(axis=0)
        if not escaped.any():
            return 0.0
    return float(escaped.mean())
