"""Explicit random-number threading for every stochastic code path.

PR 1 made bit-identical parallel/cached dictionary builds the repo's core
guarantee; that guarantee only holds if *every* random draw flows from an
explicitly threaded, seed-derived stream.  This module is the single place
where the package touches Python's stdlib ``random`` — everything else
threads one of two objects:

* :class:`numpy.random.Generator` — the preferred stream, derived via
  ``SampleSpace.child_rng`` / ``np.random.SeedSequence`` spawn keys so
  parallel workers provably never collide;
* :class:`CompatRandom` — the legacy compatibility shim.  Historically the
  ATPG stack and the synthetic-circuit generator drew from ad-hoc
  ``random.Random(seed)`` instances, and a large body of tests (and every
  cached dictionary fingerprint) pins the exact sequences those Mersenne
  Twister streams produce.  ``CompatRandom`` *is* that stream — a
  ``random.Random`` subclass that refuses unseeded construction — so seeded
  behavior is preserved bit-for-bit while the stdlib import disappears from
  the simulation modules.

:func:`coerce_rng` is the boundary adapter: public entry points accept a
numpy ``Generator``, a ``CompatRandom``/``random.Random`` instance, or
nothing (→ ``CompatRandom(seed)``), and normalize to the small drawing
surface the ATPG search loops use (``random`` / ``randint`` / ``choice`` /
``shuffle``).

The determinism linter (``repro.lint``, rule D101) flags ``import random``
anywhere else in the package; this module is the blessed exception.
"""

from __future__ import annotations

import random as _stdlib_random  # repro-lint: allow[D101] — the one blessed import
from typing import List, Optional, Sequence, Union

import numpy as np

__all__ = [
    "CompatRandom",
    "GeneratorAdapter",
    "RngLike",
    "coerce_rng",
    "compat_from_seedsequence",
    "spawn_generator",
]


class CompatRandom(_stdlib_random.Random):
    """Explicitly seeded Mersenne-Twister stream (legacy compatibility shim).

    ``CompatRandom(s)`` reproduces ``random.Random(s)`` draw-for-draw, so
    tests and cache fingerprints that pin exact historical sequences keep
    their meaning.  Unlike the stdlib class it *refuses* unseeded
    construction — there is no silent fall-back to OS entropy or wall-clock
    time, the determinism hazard the linter's D103/D104 rules exist for.
    """

    def __init__(self, seed: Union[int, str, bytes]) -> None:
        if seed is None:
            raise ValueError(
                "CompatRandom requires an explicit seed; unseeded streams "
                "break reproducibility (see repro.lint rule D103)"
            )
        super().__init__(seed)

    def seed(self, a=None, version=2) -> None:  # type: ignore[override]
        # Random.__init__ calls seed(); only reject the unseeded re-seed path
        # reached through the public API, not the constructor hand-off.
        if a is None:
            raise ValueError("CompatRandom cannot be re-seeded from OS entropy")
        super().seed(a, version)


def compat_from_seedsequence(entropy: int, *spawn_key: int) -> CompatRandom:
    """A :class:`CompatRandom` derived from a ``SeedSequence`` spawn key.

    Mirrors ``SampleSpace.child_rng``: the same ``(entropy, spawn_key)``
    always yields the same stream, distinct keys yield independent streams.
    Use this when a worker needs a *legacy-surface* rng (the ATPG search
    loops) but the seed must come from the same spawn-key discipline as the
    numpy generators around it.
    """
    if any(int(part) < 0 for part in spawn_key):
        raise ValueError("spawn_key parts must be non-negative")
    sequence = np.random.SeedSequence(
        entropy=int(entropy), spawn_key=tuple(int(part) for part in spawn_key)
    )
    state = sequence.generate_state(2, np.uint64)
    return CompatRandom(int(state[0]) ^ (int(state[1]) << 64))


def spawn_generator(seed: int, *spawn_key: int) -> np.random.Generator:
    """A seeded :class:`numpy.random.Generator` from a SeedSequence spawn key.

    Standalone counterpart of ``SampleSpace.child_rng`` for call sites that
    have a seed but no sample space in scope.
    """
    if any(int(part) < 0 for part in spawn_key):
        raise ValueError("spawn_key parts must be non-negative")
    sequence = np.random.SeedSequence(
        entropy=int(seed), spawn_key=tuple(int(part) for part in spawn_key)
    )
    return np.random.default_rng(sequence)


class GeneratorAdapter:
    """Expose the legacy drawing surface on a :class:`numpy.random.Generator`.

    Lets callers thread one explicit ``Generator`` (e.g. from
    ``SampleSpace.child_rng``) through code written against the
    ``random.Random`` API.  Draw sequences differ from ``CompatRandom`` —
    this is the *new* stream, opted into by passing a Generator explicitly.
    """

    __slots__ = ("generator",)

    def __init__(self, generator: np.random.Generator) -> None:
        self.generator = generator

    def random(self) -> float:
        return float(self.generator.random())

    def randint(self, low: int, high: int) -> int:
        """Inclusive bounds, matching ``random.Random.randint``."""
        return int(self.generator.integers(low, high + 1))

    def choice(self, sequence: Sequence):
        if not len(sequence):
            raise IndexError("cannot choose from an empty sequence")
        return sequence[int(self.generator.integers(len(sequence)))]

    def shuffle(self, items: List) -> None:
        order = self.generator.permutation(len(items))
        items[:] = [items[index] for index in order]


#: What stochastic entry points accept for their ``rng`` argument.
RngLike = Union[np.random.Generator, GeneratorAdapter, CompatRandom,
                _stdlib_random.Random]


def coerce_rng(rng: Optional[RngLike] = None, seed: int = 0):
    """Normalize an ``rng`` argument to the legacy drawing surface.

    * ``None`` → ``CompatRandom(seed)`` — the historical default stream,
      bit-identical to the old ``random.Random(seed)`` behavior;
    * a numpy ``Generator`` → wrapped in :class:`GeneratorAdapter`;
    * anything already exposing the surface (``CompatRandom``,
      ``GeneratorAdapter``, a stdlib ``random.Random``) passes through.
    """
    if rng is None:
        return CompatRandom(seed)
    if isinstance(rng, np.random.Generator):
        return GeneratorAdapter(rng)
    return rng
