"""Event-driven waveform-accurate timed simulation (future work item 1).

The vectorized transition-mode simulator (:mod:`repro.timing.dynamic`)
assumes every net transitions at most once and ignores hazards — the
standard, fast approximation.  The paper's future-work list asks to
"improve the dynamic statistical timing simulator for more accurate delay
fault simulation"; this module is that improvement: a classic event-driven
gate-level simulator with pin-to-pin transport delays that computes the
*full waveform* of every net for one circuit instance:

* static and dynamic hazards propagate (a glitch latched at the capture
  clock is a real silicon failure the transition-mode model cannot see),
* multi-transition inputs are handled exactly,
* per-net waveforms expose settle times, glitch counts and the sampled
  value at any capture time.

It is scalar per (instance, pattern) — orders of magnitude slower than the
vectorized simulator — so the main flow uses it for validation
(:func:`compare_with_transition_mode`) and for waveform-accurate behavior
matrices on demand (:func:`event_behavior_matrix`).

Transport-delay semantics: every scheduled output change is delivered;
pulses narrower than a gate delay are *not* swallowed (pessimistic glitch
accounting).  An optional inertial filter removes pulses below a
configurable width as a post-process.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.library import eval_gate
from ..circuits.netlist import Circuit
from .dynamic import edge_offsets, simulate_transition
from .instance import CircuitTiming

__all__ = [
    "Waveform",
    "EventSimResult",
    "simulate_events",
    "event_behavior_matrix",
    "compare_with_transition_mode",
]


@dataclass
class Waveform:
    """A net's value over time: initial value plus (time, value) changes."""

    initial: int
    changes: List[Tuple[float, int]] = field(default_factory=list)

    def value_at(self, time: float) -> int:
        """Sampled value at ``time`` (changes at exactly ``time`` included)."""
        value = self.initial
        for change_time, new_value in self.changes:
            if change_time > time:
                break
            value = new_value
        return value

    @property
    def final(self) -> int:
        return self.changes[-1][1] if self.changes else self.initial

    @property
    def settle_time(self) -> float:
        """Time of the last change (0.0 when the net never changes)."""
        return self.changes[-1][0] if self.changes else 0.0

    @property
    def n_transitions(self) -> int:
        return len(self.changes)

    @property
    def has_glitch(self) -> bool:
        """More than one change, or changes that end at the initial value."""
        if len(self.changes) > 1:
            return True
        return len(self.changes) == 1 and self.final == self.initial

    def filtered(self, min_pulse: float) -> "Waveform":
        """Inertial post-filter: drop pulses narrower than ``min_pulse``."""
        if min_pulse <= 0 or not self.changes:
            return self
        kept: List[Tuple[float, int]] = []
        value = self.initial
        for index, (time, new_value) in enumerate(self.changes):
            next_time = (
                self.changes[index + 1][0]
                if index + 1 < len(self.changes)
                else float("inf")
            )
            if new_value == value:
                continue
            if next_time - time >= min_pulse:
                kept.append((time, new_value))
                value = new_value
        return Waveform(self.initial, kept)


@dataclass
class EventSimResult:
    """Waveforms for every net under one two-vector test on one instance."""

    circuit: Circuit
    waveforms: Dict[str, Waveform]
    sample_index: int

    def settle_time(self, net: str) -> float:
        return self.waveforms[net].settle_time

    def sampled_outputs(self, clk: float) -> Dict[str, int]:
        return {net: self.waveforms[net].value_at(clk) for net in self.circuit.outputs}

    def output_failures(self, clk: float) -> np.ndarray:
        """Which outputs read a wrong value at the capture time ``clk``.

        "Wrong" = different from the settled second-vector value; this
        catches both late final transitions *and* glitches still in flight
        at the capture edge.
        """
        failures = np.zeros(len(self.circuit.outputs), dtype=bool)
        for row, net in enumerate(self.circuit.outputs):
            waveform = self.waveforms[net]
            failures[row] = waveform.value_at(clk) != waveform.final
        return failures

    def glitchy_nets(self) -> List[str]:
        return [
            net for net, waveform in self.waveforms.items() if waveform.has_glitch
        ]


def simulate_events(
    timing: CircuitTiming,
    v1: Sequence[int],
    v2: Sequence[int],
    sample_index: int,
    extra_delay: Optional[Dict[int, float]] = None,
    max_events: int = 1_000_000,
) -> EventSimResult:
    """Event-driven simulation of ``(v1, v2)`` on instance ``sample_index``.

    The circuit starts settled at ``v1``; at t=0 the inputs switch to
    ``v2``.  Transport-delay semantics per pin-to-pin arc; ``extra_delay``
    adds defect delay to specific edges (by index in ``circuit.edges``).
    """
    circuit = timing.circuit
    v1 = [int(v) for v in v1]
    v2 = [int(v) for v in v2]
    if len(v1) != len(circuit.inputs) or len(v2) != len(circuit.inputs):
        raise ValueError("test vectors must cover every primary input")
    extra = extra_delay or {}

    settled = circuit.evaluate(dict(zip(circuit.inputs, v1)))
    current = dict(settled)
    waveforms = {net: Waveform(settled[net]) for net in circuit.gates}

    delays = timing.delays[:, sample_index]
    offsets = edge_offsets(circuit)

    # Pin-accurate model: every edge is a pure delay line.  A net change at
    # time t arrives at each fanout *pin* at t + d(edge); the sink gate then
    # re-evaluates from its pin values with zero delay.  (Evaluating at
    # delivery from net values instead would let a change through a fast pin
    # be overwritten by a stale value computed before it — the classic
    # pin-to-pin overtaking bug.)
    pin_value: Dict[int, int] = {}
    for name in circuit.topological_order:
        gate = circuit.gates[name]
        base = offsets[name]
        for pin, fanin in enumerate(gate.fanins):
            pin_value[base + pin] = settled[fanin]

    def edge_delay(edge_index: int) -> float:
        return float(delays[edge_index]) + float(extra.get(edge_index, 0.0))

    counter = itertools.count()
    # heap entries: (arrival time, tiebreak, sink net, edge index, value)
    heap: List[Tuple[float, int, str, int, int]] = []

    def emit(net: str, time: float, value: int) -> None:
        """Record a net change and launch its pin arrivals."""
        current[net] = value
        waveforms[net].changes.append((time, value))
        for edge in circuit.fanouts[net]:
            edge_index = offsets[edge.sink] + edge.pin
            heapq.heappush(
                heap,
                (
                    time + edge_delay(edge_index),
                    next(counter),
                    edge.sink,
                    edge_index,
                    value,
                ),
            )

    for position, net in enumerate(circuit.inputs):
        if v2[position] != v1[position]:
            emit(net, 0.0, v2[position])

    processed = 0
    while heap:
        time = heap[0][0]
        # Batch all pin arrivals at this instant, then re-evaluate each
        # touched gate once — avoids artificial zero-width pulses when two
        # pins of one gate switch simultaneously.
        touched: List[str] = []
        while heap and heap[0][0] == time:
            processed += 1
            if processed > max_events:
                raise RuntimeError(
                    "event budget exhausted; the circuit is oscillating "
                    "(combinational loop?) or max_events is too small"
                )
            _t, _tie, sink, edge_index, value = heapq.heappop(heap)
            if pin_value[edge_index] != value:
                pin_value[edge_index] = value
                touched.append(sink)
        for sink in touched:
            gate = circuit.gates[sink]
            base = offsets[sink]
            new_output = eval_gate(
                gate.gate_type,
                [pin_value[base + pin] for pin in range(len(gate.fanins))],
            )
            if new_output != current[sink]:
                emit(sink, time, new_output)
    return EventSimResult(circuit, waveforms, sample_index)


def event_behavior_matrix(
    timing: CircuitTiming,
    patterns,
    clk: float,
    defect,
    sample_index: int,
) -> np.ndarray:
    """Waveform-accurate behavior matrix (drop-in for
    :func:`repro.defects.faultsim.behavior_matrix`).

    Differences from the transition-mode matrix are exactly the capture-time
    glitch effects the fast model ignores.
    """
    circuit = timing.circuit
    extra = None
    if defect is not None:
        extra = {defect.edge_index: defect.size_on_instance(sample_index)}
    matrix = np.zeros((len(circuit.outputs), len(patterns)), dtype=np.int8)
    for column, (v1, v2) in enumerate(patterns):
        result = simulate_events(timing, v1, v2, sample_index, extra_delay=extra)
        matrix[:, column] = result.output_failures(clk)
    return matrix


def compare_with_transition_mode(
    timing: CircuitTiming,
    v1: Sequence[int],
    v2: Sequence[int],
    sample_index: int,
) -> Dict[str, Tuple[float, float]]:
    """Per-net settle-time disagreement between the two simulators.

    Returns ``{net: (event_settle, transition_settle)}`` for nets where the
    models disagree by more than 1e-9.  Two systematic relations hold:

    * on hazard-free fanin cones the transition-mode settle is a
      *conservative upper bound*: its ``max`` rule charges the slowest
      (arrival + pin delay) combination, while physically the output rises
      with the last-arriving input through *that* input's pin delay —
      equality whenever pin delays are equal or the last arrival also has
      the largest sum (the common case);
    * glitchy nets can settle *later* than the transition-mode value (a
      hazard can re-toggle the output after the "final" transition) — these
      are the cases future-work item 1 is about.

    The test-suite asserts both directions.
    """
    events = simulate_events(timing, v1, v2, sample_index)
    transition = simulate_transition(
        timing, np.asarray(v1), np.asarray(v2), sample_index=sample_index
    )
    disagreements: Dict[str, Tuple[float, float]] = {}
    for net in timing.circuit.gates:
        event_settle = events.waveforms[net].settle_time
        transition_settle = float(transition.stable[net][0])
        if abs(event_settle - transition_settle) > 1e-9:
            disagreements[net] = (event_settle, transition_settle)
    return disagreements
