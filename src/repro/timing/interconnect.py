"""Interconnect (RC) delay modeling — the wire half of the paper's library.

Section H-1: "Each interconnect delay is also modeled as a random variable
and is pre-characterized once the RCs are extracted."  Without layout we
synthesize RCs from structure (a standard pre-layout estimation): each net
is a star — the driver's output resistance feeding one wire segment per
fanout pin — and the pin-specific interconnect delay is the Elmore delay of
that sink's branch:

    ``t_pin = R_driver * (C_wire_total + C_pins_total) + R_branch * (C_branch/2 + C_pin)``

:class:`RCAwareCellLibrary` folds the Elmore term into the nominal
pin-to-pin delay, so the whole timing/diagnosis stack picks up
interconnect effects with no further change — wires on high-fanout nets get
slower, and defects on those edges get correspondingly easier to see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..circuits.library import GateType
from ..circuits.netlist import Circuit, Edge
from .celllib import CellLibrary

__all__ = ["RCParameters", "RCAwareCellLibrary", "elmore_pin_delay"]


@dataclass(frozen=True)
class RCParameters:
    """Synthetic pre-layout RC constants (normalized units).

    * ``driver_resistance`` — output resistance per driving cell; inverters
      and buffers drive harder (scaled by ``drive_scale``),
    * ``branch_resistance``/``branch_capacitance`` — one wire segment per
      fanout pin,
    * ``pin_capacitance`` — input load per sink pin.
    """

    driver_resistance: float = 0.12
    branch_resistance: float = 0.05
    branch_capacitance: float = 0.06
    pin_capacitance: float = 0.10
    drive_scale: Dict[GateType, float] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.drive_scale is None:
            object.__setattr__(
                self,
                "drive_scale",
                {GateType.BUF: 0.6, GateType.NOT: 0.7, GateType.INPUT: 0.8},
            )

    def resistance_of(self, gate_type: GateType) -> float:
        return self.driver_resistance * self.drive_scale.get(gate_type, 1.0)


def elmore_pin_delay(
    circuit: Circuit, edge: Edge, params: RCParameters
) -> float:
    """Elmore delay from the driver of ``edge.source`` to ``edge``'s pin.

    Star topology: the driver resistance sees every branch's wire and pin
    capacitance; the sink's own branch resistance additionally sees half of
    its wire capacitance (distributed) plus the pin load.
    """
    fanout = len(circuit.fanouts[edge.source])
    if fanout == 0:
        return 0.0
    driver_type = circuit.gates[edge.source].gate_type
    r_driver = params.resistance_of(driver_type)
    total_cap = fanout * (params.branch_capacitance + params.pin_capacitance)
    shared = r_driver * total_cap
    branch = params.branch_resistance * (
        0.5 * params.branch_capacitance + params.pin_capacitance
    )
    return shared + branch


class RCAwareCellLibrary(CellLibrary):
    """A cell library whose nominal pin delays include Elmore wire delay.

    Replaces the base class's linear ``load_factor`` fanout term with the
    physical RC estimate (``load_factor`` is zeroed to avoid double
    counting); everything else — statistical sampling, variation model —
    is inherited unchanged.
    """

    def __init__(self, rc: RCParameters = None, **kwargs) -> None:  # type: ignore[assignment]
        kwargs.setdefault("load_factor", 0.0)
        super().__init__(**kwargs)
        self.rc = rc or RCParameters()

    def nominal_pin_delay(self, circuit: Circuit, edge: Edge) -> float:
        gate_delay = super().nominal_pin_delay(circuit, edge)
        return gate_delay + elmore_pin_delay(circuit, edge, self.rc)
