"""Compiled levelized NumPy kernel for dynamic timing simulation.

The reference kernel in :mod:`repro.timing.dynamic` walks the netlist
gate-by-gate in Python, with string-keyed dicts and a per-pin closure.  Its
per-gate decision, however, depends only on the *logic* values of the
pattern — which are sample-independent — so the whole simulation factors
into three stages with very different change rates:

1. **Circuit compilation** (once per circuit, :func:`compile_circuit`):
   lower the :class:`~repro.circuits.netlist.Circuit` into flat integer
   arrays — per-gate fanin blocks resolved to edge indices and source net
   rows, controlling values, topological levels.  Net names disappear; a
   net is a row index into one ``(n_nets, width)`` settle-time matrix.
2. **Pattern scheduling** (once per two-vector test, cached per circuit):
   evaluate the logic, classify every transitioning gate as controlled-min
   or transitioning-max exactly like ``_gate_settle_time``, and emit per
   topological level two edge groups (one per reduction kind) laid out for
   ``np.minimum.reduceat`` / ``np.maximum.reduceat``.
3. **Evaluation** (per call): gather ``delay[edge]`` for the whole
   schedule in one fancy index, then level by level gather
   ``stable[source]`` rows for all Monte-Carlo samples at once and
   segment-reduce ``stable[source] + delay`` into the settle-time matrix.
   Nothing in this stage is per-gate Python.

Cone-restricted replay (:func:`resimulate_with_extra_compiled`) filters a
pattern schedule down to the suspect's fanout cone and evaluates it into a
small ``(n_recomputed, width)`` overlay on top of the base matrix — the
fault-dictionary builder's innermost loop re-simulates one suspect against
one pattern, so the replayed slice is tiny compared to the circuit.  Cone
restrictions are cached per schedule, keyed by the identity of the
(read-only, memoized) cone list the dictionary builder passes, so the
steady-state replay does no set building and no per-edge scans at all.

Bit-identity with the reference kernel is a hard contract
(``tests/test_kernel.py``): min/max reductions are exact selections, and
every floating-point addition here pairs the same operands in the same
order as the reference closures (``stable[fanin] + (delay + extra)``), so
the two kernels agree to the last bit, not just to a tolerance.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from collections.abc import Mapping
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from ..circuits.library import CONTROLLING_VALUE, GateType
from ..circuits.netlist import Circuit
from .. import obs
from .dynamic import ExtraDelay, TransitionSimResult, edge_offsets
from .instance import CircuitTiming

__all__ = [
    "CompiledCircuit",
    "PatternSchedule",
    "StableTimes",
    "ConeStableTimes",
    "compile_circuit",
    "simulate_transition_compiled",
    "resimulate_with_extra_compiled",
    "SCHEDULE_CACHE_ENV",
    "CONE_CACHE_ENV",
]

#: Cap on cached pattern schedules per circuit (LRU, env-overridable).
SCHEDULE_CACHE_ENV = "REPRO_KERNEL_SCHEDULE_CACHE"
_SCHEDULE_CACHE_DEFAULT = 512

#: Cap on cached cone restrictions per pattern schedule (LRU).
CONE_CACHE_ENV = "REPRO_KERNEL_CONE_CACHE"
_CONE_CACHE_DEFAULT = 1024


def _cache_cap(env: str, default: int) -> int:
    raw = os.environ.get(env, "").strip()
    if not raw:
        return default
    value = int(raw)
    if value < 1:
        raise ValueError(f"{env} must be a positive integer, got {value}")
    return value


class StableTimes(Mapping):
    """Mapping view of the ``(n_nets, width)`` settle-time matrix.

    Preserves the ``result.stable[net]`` API of the reference kernel:
    indexing returns the net's row (a view — treat it as read-only).
    """

    __slots__ = ("matrix", "net_rows")

    def __init__(self, matrix: np.ndarray, net_rows: Dict[str, int]) -> None:
        self.matrix = matrix
        self.net_rows = net_rows

    def __getitem__(self, net: str) -> np.ndarray:
        return self.matrix[self.net_rows[net]]

    def take_rows(self, nets: Iterable[str]) -> np.ndarray:
        """Rows for ``nets`` stacked into one ``(len(nets), width)`` array."""
        rows = self.net_rows
        return self.matrix[[rows[net] for net in nets]]

    def __iter__(self) -> Iterator[str]:
        return iter(self.net_rows)

    def __len__(self) -> int:
        return len(self.net_rows)


class ConeStableTimes(Mapping):
    """Settle times after a cone-restricted replay.

    Recomputed nets live in a small overlay matrix; every other net falls
    through to the base simulation's matrix, so a re-simulation never
    copies the full circuit's settle times.
    """

    __slots__ = ("base", "overlay", "overlay_rows")

    def __init__(
        self,
        base: StableTimes,
        overlay: np.ndarray,
        overlay_rows: Dict[str, int],
    ) -> None:
        self.base = base
        self.overlay = overlay
        self.overlay_rows = overlay_rows

    def __getitem__(self, net: str) -> np.ndarray:
        row = self.overlay_rows.get(net)
        if row is not None:
            return self.overlay[row]
        return self.base[net]

    def take_rows(self, nets: Iterable[str]) -> np.ndarray:
        """Rows for ``nets`` stacked into one ``(len(nets), width)`` array."""
        rows = self.overlay_rows
        index = [rows.get(net) for net in nets]
        if None not in index:
            return self.overlay[index]
        return np.stack([self[net] for net in nets])

    def __iter__(self) -> Iterator[str]:
        return iter(self.base)

    def __len__(self) -> int:
        return len(self.base)


class _GroupPlan:
    """One fused reduction batch: every transitioning gate of one level.

    ``edges[starts[g] : starts[g+1]]`` (sentinel: end of array) are gate
    ``out_rows[g]``'s candidate edges in pin order; ``sources`` holds the
    matching driver net rows.  Every group has >= 1 edge, so ``starts`` is
    strictly increasing — exactly what ``ufunc.reduceat`` needs.
    ``lo:hi`` is this plan's slice of the schedule-wide concatenated edge
    array (one delay gather per call instead of one per plan).

    Controlled-min and transitioning-max gates share one
    ``np.maximum.reduceat`` call: the first ``neg_groups`` groups (their
    candidates are rows ``[0, neg_rows)``) are min reductions evaluated as
    ``-max(-x)``.  Negation is an exact sign-bit flip and NumPy's
    ``minimum``/``maximum`` resolve both ties and NaNs the same way (the
    second operand on ties, the first NaN otherwise), so the fused form
    selects bit-identical results while halving the number of reductions
    per level.
    """

    __slots__ = ("edges", "starts", "sources", "out_rows", "lo", "hi",
                 "neg_rows", "neg_groups")

    def __init__(self, edges, starts, sources, out_rows, lo, neg_rows,
                 neg_groups):
        self.edges = edges
        self.starts = starts
        self.sources = sources
        self.out_rows = out_rows
        self.lo = lo
        self.hi = lo + len(edges)
        self.neg_rows = neg_rows
        self.neg_groups = neg_groups

    def __getstate__(self):
        return (self.edges, self.starts, self.sources, self.out_rows,
                self.lo, self.neg_rows, self.neg_groups)

    def __setstate__(self, state):
        self.__init__(*state)


class _ConeSchedule:
    """A pattern schedule filtered to one fanout cone.

    ``steps`` holds per-level tuples
    ``(lo, hi, starts, inside_pos, inside_src, out_lo, out_hi, neg_rows,
    neg_groups)``: ``lo:hi`` slices the cone-wide ``edges``/``sources``
    concatenation, ``inside_pos`` marks candidate rows whose driver was
    itself recomputed (at a lower level) and must be re-summed from the
    overlay rows in ``inside_src``, ``out_lo:out_hi`` is the (contiguous,
    in replay order) overlay destination, and the leading ``neg_rows``
    rows / ``neg_groups`` groups are the fused min reductions (see
    :class:`_GroupPlan`).
    """

    __slots__ = ("edges", "sources", "steps", "n_overlay", "overlay_rows",
                 "_edge_pos")

    def __init__(self, edges, sources, steps, n_overlay, overlay_rows):
        self.edges = edges
        self.sources = sources
        self.steps = steps
        self.n_overlay = n_overlay
        #: net name -> overlay row, for the recomputed transitioning gates.
        self.overlay_rows = overlay_rows
        self._edge_pos: Optional[Dict[int, int]] = None

    @property
    def edge_pos(self) -> Dict[int, int]:
        """Edge index -> row in ``edges`` (built on first use; an edge is
        one (sink, pin) pair so it appears at most once per cone)."""
        pos = self._edge_pos
        if pos is None:
            pos = self._edge_pos = {
                int(edge): index for index, edge in enumerate(self.edges)
            }
        return pos


class PatternSchedule:
    """The per-(v1, v2) reduction schedule over a compiled circuit.

    Holds the settled logic values and, per topological level, up to two
    :class:`_GroupPlan` batches (controlled-min, transitioning-max) in
    evaluation order, plus the concatenation of every plan's edges for
    one-shot delay gathering.  Sample-independent: one schedule serves
    every Monte-Carlo width, every ``extra_delay`` and every cone replay
    of the same pattern.
    """

    __slots__ = ("compiled", "val1", "val2", "transitions",
                 "n_net_transitions", "plans", "all_edges", "all_sources",
                 "group_out", "group_plan", "group_start", "group_len",
                 "group_neg", "_edge_pos", "_cone_cache", "_cone_cap")

    def __init__(self, compiled, val1, val2, transitions, plans):
        self.compiled = compiled
        self.val1 = val1
        self.val2 = val2
        #: bool per net row (= topological order): did the net toggle?
        #: Consumers (the dictionary builder's activity planner) read this
        #: instead of re-deriving it from the value dicts.
        self.transitions = transitions
        self.n_net_transitions = int(transitions.sum())
        self.plans = plans
        empty = np.empty(0, dtype=np.int64)
        if plans:
            self.all_edges = np.concatenate([p.edges for p in plans])
            self.all_sources = np.concatenate([p.sources for p in plans])
            # Flat group table across all plans, for one-pass cone
            # restriction: group g is gate ``group_out[g]``, its candidate
            # edges sit at ``group_start[g] : +group_len[g]`` in
            # ``all_edges``, it belongs to ``plans[group_plan[g]]`` and is
            # a fused-min group iff ``group_neg[g]``.
            self.group_out = np.concatenate([p.out_rows for p in plans])
            self.group_plan = np.concatenate([
                np.full(len(p.out_rows), i, dtype=np.int64)
                for i, p in enumerate(plans)
            ])
            self.group_neg = np.concatenate([
                np.arange(len(p.out_rows), dtype=np.int64) < p.neg_groups
                for p in plans
            ])
            starts = []
            lens = []
            for p in plans:
                ends = np.empty(len(p.out_rows), dtype=np.int64)
                ends[:-1] = p.starts[1:]
                ends[-1] = len(p.edges)
                starts.append(p.lo + p.starts)
                lens.append(ends - p.starts)
            self.group_start = np.concatenate(starts)
            self.group_len = np.concatenate(lens)
        else:
            self.all_edges = empty
            self.all_sources = empty
            self.group_out = empty
            self.group_plan = empty
            self.group_start = empty
            self.group_len = empty
            self.group_neg = np.empty(0, dtype=bool)
        self._edge_pos: Optional[Dict[int, int]] = None
        self._cone_cache: "OrderedDict" = OrderedDict()
        self._cone_cap = _cache_cap(CONE_CACHE_ENV, _CONE_CACHE_DEFAULT)

    # ------------------------------------------------------------------
    @property
    def edge_pos(self) -> Dict[int, int]:
        """Edge index -> position in ``all_edges`` (built on first use)."""
        pos = self._edge_pos
        if pos is None:
            pos = self._edge_pos = {
                int(edge): index for index, edge in enumerate(self.all_edges)
            }
        return pos

    def cone_for(self, affected: Iterable[str]) -> _ConeSchedule:
        """The schedule slice recomputing (at most) ``affected``, cached.

        Keyed by the identity of ``affected`` when it is reused verbatim
        across calls — the dictionary builder passes the memoized
        ``Circuit.fanout_cone`` list for every (suspect, pattern) pair, so
        the steady state is one dict probe.  The cache holds a strong
        reference to the keyed object (no id recycling); callers must
        treat ``affected`` as immutable once passed.
        """
        cache = self._cone_cache
        key = id(affected)
        entry = cache.get(key)
        recorder = obs.get_recorder()
        if entry is not None and entry[0] is affected:
            cache.move_to_end(key)
            if recorder.enabled:
                recorder.count("kernel.cone_reuse")
            return entry[1]
        cone = self._restrict(
            affected if isinstance(affected, (set, frozenset)) else set(affected)
        )
        cache[key] = (affected, cone)
        if len(cache) > self._cone_cap:
            cache.popitem(last=False)
        if recorder.enabled:
            recorder.count("kernel.cone_schedules")
        return cone

    def _restrict(self, affected) -> _ConeSchedule:
        compiled = self.compiled
        names = compiled.net_names
        net_rows = compiled.net_rows
        n_nets = compiled.n_nets
        affected_mask = np.zeros(n_nets, dtype=bool)
        for net in affected:
            affected_mask[net_rows[net]] = True
        keep = np.flatnonzero(affected_mask[self.group_out])
        empty = np.empty(0, dtype=np.int64)
        if not keep.size:
            return _ConeSchedule(empty, empty, [], 0, {})
        out_rows = self.group_out[keep]
        # Net row -> overlay row.  Groups keep their replay order, so a
        # recomputed source (strictly lower level) is always assigned
        # before any group that reads it — a single global pass suffices.
        overlay_of = np.full(n_nets, -1, dtype=np.int64)
        overlay_of[out_rows] = np.arange(len(keep), dtype=np.int64)
        lens = self.group_len[keep]
        new_starts = np.zeros(len(keep), dtype=np.int64)
        np.cumsum(lens[:-1], out=new_starts[1:])
        # Vectorized gather of the kept groups' edge segments: output
        # position new_starts[g] + j must read global position
        # group_start[g] + j.
        take = np.repeat(self.group_start[keep] - new_starts, lens)
        take += np.arange(len(take), dtype=np.int64)
        edges = self.all_edges[take]
        sources = self.all_sources[take]
        inside_all = np.flatnonzero(overlay_of[sources] >= 0)
        inside_src_all = overlay_of[sources[inside_all]]

        # Split the kept groups back into steps wherever the owning plan
        # changes (plan ids are non-decreasing in group order).  Within a
        # fused plan min groups precede max groups, so the kept subset
        # keeps that layout; running counts of min groups/rows give each
        # step its negation boundary.
        plan_ids = self.group_plan[keep]
        neg_flags = self.group_neg[keep]
        neg_group_cum = np.concatenate(([0], np.cumsum(neg_flags)))
        neg_row_cum = np.concatenate(([0], np.cumsum(lens * neg_flags)))
        bounds = np.flatnonzero(np.diff(plan_ids)) + 1
        seg_lo = np.concatenate(([0], bounds))
        seg_hi = np.concatenate((bounds, [len(keep)]))
        steps = []
        for s, e in zip(seg_lo, seg_hi):
            lo = int(new_starts[s])
            hi = int(new_starts[e - 1] + lens[e - 1])
            i0, i1 = np.searchsorted(inside_all, [lo, hi])
            if i1 > i0:
                inside_pos = inside_all[i0:i1]
                inside_src = inside_src_all[i0:i1]
            else:
                inside_pos = None
                inside_src = None
            steps.append((
                lo,
                hi,
                new_starts[s:e] - lo,
                inside_pos,
                inside_src,
                int(s),
                int(e),
                int(neg_row_cum[e] - neg_row_cum[s]),
                int(neg_group_cum[e] - neg_group_cum[s]),
            ))
        overlay_rows = {
            names[int(row)]: index for index, row in enumerate(out_rows)
        }
        return _ConeSchedule(edges, sources, steps, len(keep), overlay_rows)

    # ------------------------------------------------------------------
    def __getstate__(self):
        # Cone restrictions and the edge-position index are cheap to
        # rebuild and access-pattern specific; keep worker pickles lean.
        return (self.compiled, self.val1, self.val2, self.transitions,
                self.plans)

    def __setstate__(self, state):
        compiled, val1, val2, transitions, plans = state
        self.__init__(compiled, val1, val2, transitions, plans)


class CompiledCircuit:
    """Flat-array lowering of a frozen :class:`Circuit` (pattern-free part).

    Nets become rows (topological order); gates carry their fanin net rows,
    the edge index of their first fanin pin (``circuit.edges`` order, so
    edge ``(gate, pin)`` is ``fanin_base[row] + pin``), their controlling
    value (-1 when none) and their topological level.  Pattern schedules
    are cached here, LRU-bounded, keyed by the raw test-vector bytes.
    """

    __slots__ = ("circuit", "net_rows", "net_names", "fanin_rows",
                 "fanin_base", "controlling", "is_input", "level",
                 "_schedule_cache")

    def __init__(self, circuit: Circuit) -> None:
        self.circuit = circuit
        order = circuit.topological_order
        self.net_names: List[str] = list(order)
        self.net_rows: Dict[str, int] = {
            name: row for row, name in enumerate(order)
        }
        offsets = edge_offsets(circuit)
        levels = circuit.levels
        n = len(order)
        self.fanin_rows: List[Tuple[int, ...]] = [()] * n
        self.fanin_base = np.zeros(n, dtype=np.int64)
        self.controlling = np.full(n, -1, dtype=np.int8)
        self.is_input = np.zeros(n, dtype=bool)
        self.level = np.zeros(n, dtype=np.int64)
        for row, name in enumerate(order):
            gate = circuit.gates[name]
            self.fanin_rows[row] = tuple(
                self.net_rows[fanin] for fanin in gate.fanins
            )
            self.fanin_base[row] = offsets[name]
            controlling = CONTROLLING_VALUE[gate.gate_type]
            if controlling is not None:
                self.controlling[row] = controlling
            self.is_input[row] = gate.gate_type is GateType.INPUT
            self.level[row] = levels[name]
        self._schedule_cache: "OrderedDict[bytes, PatternSchedule]" = OrderedDict()

    @property
    def n_nets(self) -> int:
        return len(self.net_names)

    # ------------------------------------------------------------------
    def schedule_for(self, v1: np.ndarray, v2: np.ndarray) -> PatternSchedule:
        """The (cached) reduction schedule for normalized vectors (v1, v2)."""
        key = v1.tobytes() + b"|" + v2.tobytes()
        cache = self._schedule_cache
        schedule = cache.get(key)
        recorder = obs.get_recorder()
        if schedule is not None:
            cache.move_to_end(key)
            if recorder.enabled:
                recorder.count("kernel.schedule_reuse")
            return schedule
        schedule = self._build_schedule(v1, v2)
        cache[key] = schedule
        if len(cache) > _cache_cap(SCHEDULE_CACHE_ENV, _SCHEDULE_CACHE_DEFAULT):
            cache.popitem(last=False)
        if recorder.enabled:
            recorder.count("kernel.schedules_built")
        return schedule

    def _build_schedule(self, v1: np.ndarray, v2: np.ndarray) -> PatternSchedule:
        circuit = self.circuit
        assignment1 = {net: int(v1[i]) for i, net in enumerate(circuit.inputs)}
        assignment2 = {net: int(v2[i]) for i, net in enumerate(circuit.inputs)}
        val1 = circuit.evaluate(assignment1)
        val2 = circuit.evaluate(assignment2)
        names = self.net_names
        val1_arr = np.fromiter(
            (val1[name] for name in names), dtype=np.int8, count=len(names)
        )
        val2_arr = np.fromiter(
            (val2[name] for name in names), dtype=np.int8, count=len(names)
        )
        transitions = val1_arr != val2_arr
        active = np.flatnonzero(transitions & ~self.is_input)
        # Stable sort keeps topological order within each level — not
        # required for correctness (levels are strict) but deterministic.
        active = active[np.argsort(self.level[active], kind="stable")]

        plans: List[_GroupPlan] = []
        offset = 0
        index = 0
        n_active = len(active)
        while index < n_active:
            current_level = self.level[active[index]]
            builders = {True: ([], [], [], []), False: ([], [], [], [])}
            while index < n_active and self.level[active[index]] == current_level:
                row = int(active[index])
                index += 1
                fanin_rows = self.fanin_rows[row]
                base = int(self.fanin_base[row])
                controlling = int(self.controlling[row])
                pins = None
                is_min = False
                if controlling >= 0:
                    pins = [
                        pin for pin, src in enumerate(fanin_rows)
                        if val2_arr[src] == controlling
                    ]
                    is_min = bool(pins)
                if not is_min:
                    pins = [
                        pin for pin, src in enumerate(fanin_rows)
                        if val1_arr[src] != val2_arr[src]
                    ]
                    if not pins:
                        # Mirror the reference fallback for degenerate
                        # transitioning gates with no transitioning input.
                        pins = list(range(len(fanin_rows)))
                edges, starts, sources, out_rows = builders[is_min]
                starts.append(len(edges))
                edges.extend(base + pin for pin in pins)
                sources.extend(fanin_rows[pin] for pin in pins)
                out_rows.append(row)
            # Fuse the level's min and max groups into one plan, min
            # groups first: their rows/outputs are sign-flipped around a
            # single maximum.reduceat (see _GroupPlan).
            min_edges, min_starts, min_sources, min_outs = builders[True]
            max_edges, max_starts, max_sources, max_outs = builders[False]
            edges = min_edges + max_edges
            starts = min_starts + [len(min_edges) + s for s in max_starts]
            plans.append(_GroupPlan(
                np.asarray(edges, dtype=np.int64),
                np.asarray(starts, dtype=np.int64),
                np.asarray(min_sources + max_sources, dtype=np.int64),
                np.asarray(min_outs + max_outs, dtype=np.int64),
                offset,
                len(min_edges),
                len(min_outs),
            ))
            offset += len(edges)
        return PatternSchedule(self, val1, val2, transitions, plans)

    # ------------------------------------------------------------------
    def __getstate__(self):
        # The schedule cache can hold hundreds of unrelated patterns; a
        # worker only needs the schedules its shipped results reference
        # (pickle memoization carries those through TransitionSimResult).
        return (self.circuit, self.net_rows, self.net_names, self.fanin_rows,
                self.fanin_base, self.controlling, self.is_input, self.level)

    def __setstate__(self, state):
        (self.circuit, self.net_rows, self.net_names, self.fanin_rows,
         self.fanin_base, self.controlling, self.is_input, self.level) = state
        self._schedule_cache = OrderedDict()


def compile_circuit(circuit: Circuit) -> CompiledCircuit:
    """Compile ``circuit`` (memoized: at most one compilation per circuit)."""
    compiled = getattr(circuit, "_compiled_kernel", None)
    if compiled is None:
        recorder = obs.get_recorder()
        with recorder.span("kernel.compile"):
            compiled = CompiledCircuit(circuit)
        if recorder.enabled:
            recorder.count("kernel.compiles")
        circuit._compiled_kernel = compiled  # type: ignore[attr-defined]
    return compiled


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------
def _gather_delays(
    delays: np.ndarray,
    edges: np.ndarray,
    edge_pos: Dict[int, int],
    extra_delay: Optional[ExtraDelay],
) -> np.ndarray:
    """``delay[edge]`` rows for a whole schedule, with extra delay applied.

    The addition pairs operands exactly like the reference ``delay_of``
    closure (``delays[edge] + extra[edge]``) to preserve bit-identity.
    Extra delay on an edge outside the schedule (a non-candidate pin) is
    ignored, as it is by the reference kernel.
    """
    rows = delays[edges]
    if extra_delay:
        for edge_index, value in extra_delay.items():
            pos = edge_pos.get(int(edge_index))
            if pos is not None:
                rows[pos] = rows[pos] + np.asarray(value)
    return rows


def simulate_transition_compiled(
    timing: CircuitTiming,
    v1: np.ndarray,
    v2: np.ndarray,
    extra_delay: Optional[ExtraDelay] = None,
    sample_index: Optional[int] = None,
) -> TransitionSimResult:
    """Compiled-kernel implementation of
    :func:`repro.timing.dynamic.simulate_transition` (bit-identical)."""
    circuit = timing.circuit
    compiled = compile_circuit(circuit)
    v1 = np.asarray(v1).astype(int).ravel()
    v2 = np.asarray(v2).astype(int).ravel()
    if v1.shape[0] != len(circuit.inputs) or v2.shape[0] != len(circuit.inputs):
        raise ValueError("test vectors must cover every primary input")
    schedule = compiled.schedule_for(v1, v2)

    if sample_index is None:
        delays = timing.delays
        width = timing.space.n_samples
    else:
        delays = timing.delays[:, sample_index : sample_index + 1]
        width = 1

    stable = np.zeros((compiled.n_nets, width))
    if len(schedule.all_edges):
        dl = _gather_delays(
            delays, schedule.all_edges,
            schedule.edge_pos if extra_delay else {}, extra_delay,
        )
        for plan in schedule.plans:
            rows = stable[plan.sources] + dl[plan.lo : plan.hi]
            if plan.neg_rows:
                seg = rows[: plan.neg_rows]
                np.negative(seg, out=seg)
            out = np.maximum.reduceat(rows, plan.starts, axis=0)
            if plan.neg_groups:
                seg = out[: plan.neg_groups]
                np.negative(seg, out=seg)
            stable[plan.out_rows] = out

    recorder = obs.get_recorder()
    if recorder.enabled:
        recorder.count("dynamic.transition_sims")
        recorder.count("dynamic.net_transitions", schedule.n_net_transitions)
        recorder.count("kernel.reductions", len(schedule.all_edges))
    return TransitionSimResult(
        timing,
        v1,
        v2,
        schedule.val1,
        schedule.val2,
        StableTimes(stable, compiled.net_rows),
        width,
        sample_index,
        kernel_state=schedule,
    )


def resimulate_with_extra_compiled(
    base: TransitionSimResult,
    extra_delay: ExtraDelay,
    affected: Optional[Iterable[str]] = None,
) -> TransitionSimResult:
    """Cone-restricted schedule replay behind
    :func:`repro.timing.dynamic.resimulate_with_extra` (bit-identical)."""
    schedule = base.kernel_state
    if not isinstance(schedule, PatternSchedule):
        raise TypeError("base result does not carry a compiled-kernel schedule")
    timing = base.timing
    circuit = timing.circuit

    if affected is None:
        affected = set()
        edges = circuit.edges
        for edge_index in extra_delay:
            affected.update(circuit.fanout_cone(edges[edge_index].sink))
        if not affected:
            return base
        affected = frozenset(affected)
    elif not affected:
        return base
    elif not hasattr(affected, "__len__"):
        affected = set(affected)
        if not affected:
            return base
    recorder = obs.get_recorder()
    if recorder.enabled:
        recorder.count("dynamic.resimulations")
        recorder.count("dynamic.nets_recomputed", len(affected))

    cone = schedule.cone_for(affected)
    delays = (
        timing.delays
        if base.sample_index is None
        else timing.delays[:, base.sample_index : base.sample_index + 1]
    )
    base_stable = base.stable
    if not isinstance(base_stable, StableTimes):
        raise TypeError("compiled re-simulation requires a compiled base result")
    base_matrix = base_stable.matrix

    overlay = np.empty((cone.n_overlay, base.width))
    if cone.steps:
        dl = delays[cone.edges]
        if extra_delay:
            edge_pos = cone.edge_pos
            for edge_index, value in extra_delay.items():
                pos = edge_pos.get(int(edge_index))
                if pos is not None:
                    dl[pos] = dl[pos] + np.asarray(value)
        # Candidate rows for the whole cone in one shot; rows whose driver
        # is recomputed get re-summed from the overlay inside the step
        # loop, once that overlay row exists (drivers sit at strictly
        # lower levels, i.e. in earlier steps).
        rows = base_matrix[cone.sources]
        rows += dl
        for (lo, hi, starts, inside_pos, inside_src, out_lo, out_hi,
                neg_rows, neg_groups) in cone.steps:
            if inside_pos is not None:
                rows[inside_pos] = overlay[inside_src] + dl[inside_pos]
            if neg_rows:
                seg = rows[lo : lo + neg_rows]
                np.negative(seg, out=seg)
            np.maximum.reduceat(
                rows[lo:hi], starts, axis=0, out=overlay[out_lo:out_hi]
            )
            if neg_groups:
                seg = overlay[out_lo : out_lo + neg_groups]
                np.negative(seg, out=seg)
        if recorder.enabled:
            recorder.count("kernel.reductions", len(cone.edges))

    stable = ConeStableTimes(base_stable, overlay, cone.overlay_rows)
    # ``kernel_state`` stays None: a replay of a replay would need the
    # overlay folded back into a full matrix; the reference path handles
    # that rare case instead (bit-identically).
    return TransitionSimResult(
        timing,
        base.v1,
        base.v2,
        base.val1,
        base.val2,
        stable,
        base.width,
        base.sample_index,
    )


def replay_cone_sizes_compiled(
    base: TransitionSimResult,
    edge_index: int,
    size_vectors: Sequence[np.ndarray],
    affected: Iterable[str],
    nets: Sequence[str],
) -> np.ndarray:
    """Batched cone replays for one suspect edge.

    Returns the ``(len(size_vectors), len(nets), width)`` settle rows of
    ``nets`` after adding each vector of ``size_vectors`` to the edge.
    The sampling subsystem re-simulates the same (suspect, pattern) cone
    once per allocation round; this hoists the cone schedule lookup, the
    delay gather and the candidate-row gather across the whole batch
    instead of paying them per round.  Bit-identical to calling
    :func:`resimulate_with_extra_compiled` once per vector and stacking
    ``stable.take_rows(nets)``.
    """
    schedule = base.kernel_state
    if not isinstance(schedule, PatternSchedule):
        raise TypeError("base result does not carry a compiled-kernel schedule")
    timing = base.timing
    if not hasattr(affected, "__len__"):
        affected = set(affected)
    nets = list(nets)
    size_vectors = list(size_vectors)
    out = np.empty((len(size_vectors), len(nets), base.width))
    if not affected or not size_vectors:
        return out

    base_stable = base.stable
    if not isinstance(base_stable, StableTimes):
        raise TypeError("compiled re-simulation requires a compiled base result")
    cone = schedule.cone_for(affected)
    overlay_rows = cone.overlay_rows
    row_index = [overlay_rows.get(net) for net in nets]

    recorder = obs.get_recorder()
    if recorder.enabled:
        recorder.count("dynamic.resimulations", len(size_vectors))
        recorder.count(
            "dynamic.nets_recomputed", len(affected) * len(size_vectors)
        )

    if not cone.steps:
        # Nothing recomputed in this cone: every requested net falls
        # through to the base rows for every vector.
        if nets:
            out[:] = np.stack([base_stable[net] for net in nets])
        return out

    delays = (
        timing.delays
        if base.sample_index is None
        else timing.delays[:, base.sample_index : base.sample_index + 1]
    )
    dl0 = delays[cone.edges]
    src0 = base_stable.matrix[cone.sources]
    pos = cone.edge_pos.get(int(edge_index))
    overlay = np.empty((cone.n_overlay, base.width))
    base_rows = {
        net: base_stable[net]
        for net, row in zip(nets, row_index)
        if row is None
    }
    for vector, sizes in enumerate(size_vectors):
        dl = dl0
        if pos is not None:
            dl = dl0.copy()
            dl[pos] = dl0[pos] + np.asarray(sizes)
        rows = src0 + dl
        for (lo, hi, starts, inside_pos, inside_src, out_lo, out_hi,
                neg_rows, neg_groups) in cone.steps:
            if inside_pos is not None:
                rows[inside_pos] = overlay[inside_src] + dl[inside_pos]
            if neg_rows:
                seg = rows[lo : lo + neg_rows]
                np.negative(seg, out=seg)
            np.maximum.reduceat(
                rows[lo:hi], starts, axis=0, out=overlay[out_lo:out_hi]
            )
            if neg_groups:
                seg = overlay[out_lo : out_lo + neg_groups]
                np.negative(seg, out=seg)
        for column, (net, row) in enumerate(zip(nets, row_index)):
            out[vector, column] = (
                overlay[row] if row is not None else base_rows[net]
            )
    if recorder.enabled:
        recorder.count("kernel.reductions", len(cone.edges) * len(size_vectors))
    return out
