"""Statistical static timing analysis (Definition D.5, "static" half).

Block-based Monte-Carlo STA: arrival-time sample vectors propagate through
the DAG in topological order with the elementwise sum/max algebra of
:mod:`repro.timing.randvars`.  Because every edge delay shares the common
sample space, arbitrary correlations (global process shift, reconvergent
fanout) are handled exactly — the known weakness of analytic (moment-based)
statistical STA that motivated the Monte-Carlo framework of [5]/[17].

Static STA here is *topological*: it ignores logic masking, i.e. it bounds
the sensitizable delay from above (false paths included).  The diagnosis
flow uses it for clock selection and longest-path search; per-pattern
sensitized arrival times come from :mod:`repro.timing.dynamic`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..circuits.library import GateType
from ..circuits.netlist import Circuit
from .instance import CircuitTiming
from .randvars import RandomVariable

__all__ = ["StaResult", "analyze", "suggest_clock"]


@dataclass
class StaResult:
    """Arrival-time samples per net plus the circuit-delay distribution."""

    timing: CircuitTiming
    arrivals: Dict[str, np.ndarray]

    def arrival(self, net: str) -> RandomVariable:
        """``Ar(net)`` as a random variable (Definition under D-1)."""
        return RandomVariable(self.arrivals[net], self.timing.space)

    def circuit_delay(self) -> RandomVariable:
        """``Delta(C) = max over outputs of Ar(o)`` — the D-1 circuit delay."""
        outputs = self.timing.circuit.outputs
        stacked = np.stack([self.arrivals[net] for net in outputs])
        return RandomVariable(stacked.max(axis=0), self.timing.space)

    def critical_probability(self, net: str, clk: float) -> float:
        return float(np.mean(self.arrivals[net] > clk))

    def nominal_arrival(self, net: str) -> float:
        return float(self.arrivals[net].mean())


def analyze(timing: CircuitTiming, extra_delay: Optional[Dict[int, np.ndarray]] = None) -> StaResult:
    """Run statistical STA; optionally add per-edge extra delay samples.

    ``extra_delay`` maps edge indices (``circuit.edges`` order) to sample
    vectors — the hook used to study a defect's effect on the static
    distribution (e.g. for clock selection under pessimism, or ablations).
    """
    circuit = timing.circuit
    delays = timing.delays
    edge_offset: Dict[str, int] = {}
    offset = 0
    # circuit.edges is ordered by (topological sink, pin): precompute offsets.
    for name in circuit.topological_order:
        edge_offset[name] = offset
        offset += len(circuit.gates[name].fanins)

    arrivals: Dict[str, np.ndarray] = {}
    zeros = np.zeros(timing.space.n_samples)
    for name in circuit.topological_order:
        gate = circuit.gates[name]
        if gate.gate_type is GateType.INPUT:
            arrivals[name] = zeros
            continue
        base = edge_offset[name]
        best: Optional[np.ndarray] = None
        for pin, fanin in enumerate(gate.fanins):
            edge_index = base + pin
            candidate = arrivals[fanin] + delays[edge_index]
            if extra_delay and edge_index in extra_delay:
                candidate = candidate + extra_delay[edge_index]
            best = candidate if best is None else np.maximum(best, candidate)
        arrivals[name] = best if best is not None else zeros
    return StaResult(timing, arrivals)


def suggest_clock(timing: CircuitTiming, quantile: float = 0.95) -> float:
    """Cut-off period ``clk`` as a quantile of the defect-free ``Delta(C)``.

    The paper applies one fixed ``clk`` to observe the behavior matrix
    (Algorithm E.1, step 0) without specifying how it was chosen; a high
    quantile of the healthy population is the natural test-clock choice —
    healthy chips mostly pass, delay-defective chips fail some patterns.
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must be in (0, 1)")
    return analyze(timing).circuit_delay().quantile(quantile)
