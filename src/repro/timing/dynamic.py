"""Statistical *dynamic* timing simulation (Definition D.5, dynamic half).

Given a two-vector delay test ``(v1, v2)`` this module computes, for every
net, the time at which the net settles to its final value — simultaneously
for all Monte-Carlo samples (all circuit instances).  The per-output settle
times of transitioning outputs are exactly the arrival-time random variables
``Ar(o_i)`` on the induced circuit ``Induced(Path_v)`` of Definition D.7:
outputs without a sensitized transition are never at risk and get critical
probability 0, matching the paper's convention.

Model (standard transition-mode timed simulation):

* every net makes at most one transition between the settled ``v1`` state
  and the settled ``v2`` state; static hazards/glitches on nets whose two
  logic values coincide are ignored (documented simplification),
* a gate whose final output value is *controlled* settles when its earliest
  controlling-final input settles: ``min`` over those inputs of
  (input settle time + pin-to-pin delay),
* otherwise the gate settles with its latest *transitioning* input:
  ``max`` over transitioning inputs of (settle + delay); if no input
  transitions the output cannot transition either and is stable from t=0.

Because logic values are sample-independent, a delay defect (extra delay on
one edge) changes settle times only inside the defect's fanout cone —
:func:`resimulate_with_extra` exploits this to make probabilistic fault
dictionary construction (hundreds of suspects) cheap.

Two interchangeable evaluation kernels implement these rules:

* the **reference** kernel (:func:`simulate_transition_reference` /
  :func:`resimulate_with_extra_reference`) — the original gate-by-gate
  Python walk, kept as the obviously-correct oracle,
* the **compiled** kernel (:mod:`repro.timing.kernel`) — a one-time
  lowering of the circuit into flat integer arrays plus a per-pattern
  reduction schedule evaluated level-by-level with segment min/max
  reductions across all Monte-Carlo samples at once.

:func:`simulate_transition` and :func:`resimulate_with_extra` dispatch on
``REPRO_TIMING_KERNEL`` (``compiled``, the default, or ``reference``); the
two kernels are bit-identical (``tests/test_kernel.py`` pins this), so the
switch is purely a performance knob.  Callers outside ``timing/`` must use
the dispatching entry points — lint rule ``D106`` enforces it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from ..circuits.library import CONTROLLING_VALUE, GateType
from ..circuits.netlist import Circuit
from .. import obs
from .instance import CircuitTiming
from .randvars import RandomVariable

__all__ = [
    "TransitionSimResult",
    "simulate_transition",
    "simulate_transition_reference",
    "resimulate_with_extra",
    "resimulate_with_extra_reference",
    "replay_sizes",
    "edge_offsets",
    "active_kernel",
    "KERNEL_ENV",
]

ExtraDelay = Mapping[int, Union[float, np.ndarray]]

#: Environment variable selecting the dynamic-simulation kernel.
KERNEL_ENV = "REPRO_TIMING_KERNEL"

#: Recognized kernel names, in default-first order.
KERNELS = ("compiled", "reference")


def active_kernel() -> str:
    """The kernel :func:`simulate_transition` will dispatch to right now."""
    value = os.environ.get(KERNEL_ENV, "").strip() or KERNELS[0]
    if value not in KERNELS:
        raise ValueError(
            f"{KERNEL_ENV}={value!r} is not a known timing kernel; "
            f"expected one of {', '.join(KERNELS)}"
        )
    return value


def _compute_edge_offsets(circuit: Circuit) -> Dict[str, int]:
    offsets: Dict[str, int] = {}
    offset = 0
    for name in circuit.topological_order:
        offsets[name] = offset
        offset += len(circuit.gates[name].fanins)
    return offsets


def edge_offsets(circuit: Circuit) -> Dict[str, int]:
    """First edge index of each gate's fanin block in ``circuit.edges`` order.

    Memoized on the (frozen, hence immutable) circuit: both simulation
    kernels and the event simulator ask for the same table on every call,
    so it is computed at most once per circuit.  Treat it as read-only.
    """
    cached = getattr(circuit, "_edge_offsets_cache", None)
    if cached is None:
        cached = _compute_edge_offsets(circuit)
        circuit._edge_offsets_cache = cached  # type: ignore[attr-defined]
    return cached


@dataclass
class TransitionSimResult:
    """Settle times and logic values for one two-vector test.

    ``stable[net]`` has shape ``(width,)`` where ``width`` is the number of
    simulated samples (the full sample space, or 1 for an instance-level
    simulation).  ``val1``/``val2`` are the settled logic values — identical
    across samples since delays never change logic.

    ``stable`` is a mapping from net name to settle-time vector; the
    reference kernel materializes a plain dict of per-net arrays while the
    compiled kernel backs the same mapping with one ``(n_nets, width)``
    matrix (:class:`repro.timing.kernel.StableTimes`).  ``kernel_state``
    carries the compiled kernel's pattern schedule so cone-restricted
    re-simulation can replay it; it is ``None`` for reference results.
    """

    timing: CircuitTiming
    v1: np.ndarray
    v2: np.ndarray
    val1: Dict[str, int]
    val2: Dict[str, int]
    stable: Mapping[str, np.ndarray]
    width: int
    sample_index: Optional[int] = None
    kernel_state: Optional[object] = field(default=None, repr=False, compare=False)

    def transitioned(self, net: str) -> bool:
        """True iff the test launches a transition onto ``net``."""
        return self.val1[net] != self.val2[net]

    def arrival(self, net: str) -> RandomVariable:
        """``Ar(net)`` on the induced circuit (full-width results only)."""
        if self.width != self.timing.space.n_samples:
            raise ValueError("arrival() requires a full-sample-space simulation")
        return RandomVariable(self.stable[net], self.timing.space)

    def error_vector(self, clk: float) -> np.ndarray:
        """``Err(C, v, clk)`` of Definition D.7: per-output critical probability."""
        outputs = self.timing.circuit.outputs
        recorder = obs.get_recorder()
        vector = np.zeros(len(outputs))
        take = getattr(self.stable, "take_rows", None)
        if take is not None and not recorder.enabled:
            # Matrix-backed (compiled-kernel) results: one gather of the
            # transitioning output rows and one vectorized threshold pass.
            # Bit-identical to the per-net loop — the bool sums along
            # axis 1 are exact integers, divided by the same width.
            val1, val2 = self.val1, self.val2
            live = [i for i, net in enumerate(outputs) if val1[net] != val2[net]]
            if live:
                stacked = take([outputs[i] for i in live])
                vector[live] = (stacked > clk).mean(axis=1)
            return vector
        for index, net in enumerate(outputs):
            if self.transitioned(net):
                vector[index] = float(np.mean(self.stable[net] > clk))
                if recorder.enabled:
                    # The raw Monte-Carlo samples behind this estimate:
                    # the meter tracks running mean/variance/SE/ESS of the
                    # output settle-time population.
                    recorder.observe("dynamic.settle", self.stable[net])
        return vector

    def output_failures(self, clk: float) -> np.ndarray:
        """Boolean ``(|O|, width)``: which outputs fail on which sample."""
        outputs = self.timing.circuit.outputs
        failures = np.zeros((len(outputs), self.width), dtype=bool)
        for index, net in enumerate(outputs):
            if self.transitioned(net):
                failures[index] = self.stable[net] > clk
        return failures


def _gate_settle_time(
    gate_type: GateType,
    fanins: Sequence[str],
    val1: Dict[str, int],
    val2: Dict[str, int],
    stable_of,
    delay_of,
) -> np.ndarray:
    """Apply the controlled-min / transitioning-max settle rule for one gate."""
    controlling = CONTROLLING_VALUE[gate_type]
    if controlling is not None:
        controlled = [
            (fanin, pin)
            for pin, fanin in enumerate(fanins)
            if val2[fanin] == controlling
        ]
        if controlled:
            candidates = [stable_of(f) + delay_of(p) for f, p in controlled]
            return np.minimum.reduce(candidates)
    transitioning = [
        (fanin, pin)
        for pin, fanin in enumerate(fanins)
        if val1[fanin] != val2[fanin]
    ]
    if not transitioning:
        # The output transition must then come from nowhere — callers only
        # invoke this for transitioning outputs, which implies at least one
        # transitioning input except in degenerate const-redundant cases.
        transitioning = list((fanin, pin) for pin, fanin in enumerate(fanins))
    candidates = [stable_of(f) + delay_of(p) for f, p in transitioning]
    return np.maximum.reduce(candidates)


def simulate_transition(
    timing: CircuitTiming,
    v1: np.ndarray,
    v2: np.ndarray,
    extra_delay: Optional[ExtraDelay] = None,
    sample_index: Optional[int] = None,
) -> TransitionSimResult:
    """Timed simulation of the two-vector test ``(v1, v2)``.

    ``extra_delay`` maps edge indices to additional delay (scalar or
    per-sample vector) — the defect-injection hook.  ``sample_index``
    restricts the simulation to one Monte-Carlo sample, i.e. simulates a
    single :class:`CircuitInstance`; the result then has ``width == 1``.

    Dispatches to the kernel selected by ``REPRO_TIMING_KERNEL`` (the
    compiled levelized kernel by default); both kernels are bit-identical.
    """
    if active_kernel() == "compiled":
        from .kernel import simulate_transition_compiled

        return simulate_transition_compiled(
            timing, v1, v2, extra_delay=extra_delay, sample_index=sample_index
        )
    return simulate_transition_reference(
        timing, v1, v2, extra_delay=extra_delay, sample_index=sample_index
    )


def simulate_transition_reference(
    timing: CircuitTiming,
    v1: np.ndarray,
    v2: np.ndarray,
    extra_delay: Optional[ExtraDelay] = None,
    sample_index: Optional[int] = None,
) -> TransitionSimResult:
    """The reference (gate-by-gate Python) kernel behind
    :func:`simulate_transition`; kept as the bit-exact oracle the compiled
    kernel is validated against."""
    circuit = timing.circuit
    v1 = np.asarray(v1).astype(int).ravel()
    v2 = np.asarray(v2).astype(int).ravel()
    if v1.shape[0] != len(circuit.inputs) or v2.shape[0] != len(circuit.inputs):
        raise ValueError("test vectors must cover every primary input")

    val1 = circuit.evaluate({net: int(v1[i]) for i, net in enumerate(circuit.inputs)})
    val2 = circuit.evaluate({net: int(v2[i]) for i, net in enumerate(circuit.inputs)})

    if sample_index is None:
        delays = timing.delays
        width = timing.space.n_samples
    else:
        delays = timing.delays[:, sample_index : sample_index + 1]
        width = 1

    # One conversion per extra edge, not one per (gate, pin) closure call.
    extra = {
        int(index): np.asarray(value)
        for index, value in (extra_delay or {}).items()
    }
    offsets = edge_offsets(circuit)
    zeros = np.zeros(width)
    stable: Dict[str, np.ndarray] = {}

    for name in circuit.topological_order:
        gate = circuit.gates[name]
        if gate.gate_type is GateType.INPUT or val1[name] == val2[name]:
            stable[name] = zeros
            continue
        base = offsets[name]

        def delay_of(pin: int, _base: int = base) -> np.ndarray:
            edge_index = _base + pin
            d = delays[edge_index]
            if edge_index in extra:
                d = d + extra[edge_index]
            return d

        stable[name] = _gate_settle_time(
            gate.gate_type, gate.fanins, val1, val2, stable.__getitem__, delay_of
        )
    recorder = obs.get_recorder()
    if recorder.enabled:
        recorder.count("dynamic.transition_sims")
        recorder.count(
            "dynamic.net_transitions",
            sum(1 for name in val1 if val1[name] != val2[name]),
        )
    return TransitionSimResult(
        timing, v1, v2, val1, val2, stable, width, sample_index
    )


def resimulate_with_extra(
    base: TransitionSimResult,
    extra_delay: ExtraDelay,
    affected: Optional[Iterable[str]] = None,
) -> TransitionSimResult:
    """Re-evaluate settle times after adding delay to a few edges.

    Only the union of the affected edges' sink fanout cones is recomputed;
    every other net shares the base result's arrays.  Logic values are
    reused verbatim (a delay defect never changes settled logic).  The base
    must be a full-width simulation of the same timing model.

    ``affected`` optionally supplies that cone union precomputed — the
    dictionary builder re-simulates every suspect of a sink against many
    patterns and amortizes the cone traversal across all of them.  It must
    cover (at least) the fanout cones of every edge in ``extra_delay``.

    When the base carries a compiled-kernel schedule and the compiled
    kernel is active, the replay runs the cone-restricted slice of that
    schedule; otherwise the reference per-gate path runs.  Both are
    bit-identical.
    """
    if base.kernel_state is not None and active_kernel() == "compiled":
        from .kernel import resimulate_with_extra_compiled

        return resimulate_with_extra_compiled(base, extra_delay, affected)
    return resimulate_with_extra_reference(base, extra_delay, affected)


def replay_sizes(
    base: TransitionSimResult,
    edge_index: int,
    size_vectors: Sequence[np.ndarray],
    affected: Iterable[str],
    nets: Sequence[str],
) -> np.ndarray:
    """Batched :func:`resimulate_with_extra` for one suspect edge.

    Returns the ``(len(size_vectors), len(nets), width)`` settle rows of
    ``nets`` after adding each vector of ``size_vectors`` to the edge —
    the sampling subsystem replays the same (suspect, pattern) cone once
    per allocation round, and the compiled kernel hoists the cone
    schedule and delay gathers across the whole batch.  Bit-identical to
    the per-vector loop on either kernel.
    """
    size_vectors = list(size_vectors)
    if base.kernel_state is not None and active_kernel() == "compiled":
        from .kernel import replay_cone_sizes_compiled

        return replay_cone_sizes_compiled(
            base, edge_index, size_vectors, affected, nets
        )
    nets = list(nets)
    out = np.empty((len(size_vectors), len(nets), base.width))
    for index, sizes in enumerate(size_vectors):
        patched = resimulate_with_extra(
            base, {int(edge_index): sizes}, affected=affected
        )
        stable = patched.stable
        take = getattr(stable, "take_rows", None)
        if take is not None:
            out[index] = take(nets)
        else:
            out[index] = np.stack([stable[net] for net in nets])
    return out


def resimulate_with_extra_reference(
    base: TransitionSimResult,
    extra_delay: ExtraDelay,
    affected: Optional[Iterable[str]] = None,
) -> TransitionSimResult:
    """The reference cone re-simulation behind :func:`resimulate_with_extra`."""
    timing = base.timing
    circuit = timing.circuit
    edges = circuit.edges

    if affected is None:
        affected = set()
        for edge_index in extra_delay:
            affected.update(circuit.fanout_cone(edges[edge_index].sink))
    elif not isinstance(affected, set):
        affected = set(affected)
    if not affected:
        return base
    recorder = obs.get_recorder()
    if recorder.enabled:
        # The dictionary builder's hottest loop: one resimulation per
        # (suspect, live pattern).  Guarded so the disabled path costs one
        # attribute read.
        recorder.count("dynamic.resimulations")
        recorder.count("dynamic.nets_recomputed", len(affected))

    delays = (
        timing.delays
        if base.sample_index is None
        else timing.delays[:, base.sample_index : base.sample_index + 1]
    )
    offsets = edge_offsets(circuit)
    zeros = np.zeros(base.width)
    stable = dict(base.stable)
    # One conversion per extra edge, not one per recomputed gate: the
    # dictionary builder passes the same size-sample vector for every
    # affected gate of every resimulation.
    extra = {int(index): np.asarray(value) for index, value in extra_delay.items()}

    for name in circuit.topological_order:
        if name not in affected:
            continue
        gate = circuit.gates[name]
        if gate.gate_type is GateType.INPUT or base.val1[name] == base.val2[name]:
            stable[name] = zeros
            continue
        base_offset = offsets[name]

        def delay_of(pin: int, _base: int = base_offset) -> np.ndarray:
            edge_index = _base + pin
            d = delays[edge_index]
            if edge_index in extra:
                d = d + extra[edge_index]
            return d

        stable[name] = _gate_settle_time(
            gate.gate_type, gate.fanins, base.val1, base.val2,
            stable.__getitem__, delay_of,
        )
    return TransitionSimResult(
        timing, base.v1, base.v2, base.val1, base.val2, stable, base.width,
        base.sample_index,
    )
