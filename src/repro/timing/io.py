"""Persistence for timing models and fault dictionaries.

An industrial flow characterizes once and diagnoses many failing chips; the
paper's framing ("assume computing and storing the fault dictionary is not
an issue") presumes exactly this separation.  This module stores

* a :class:`~repro.timing.instance.CircuitTiming` — netlist (as ``.bench``
  text), sample-space metadata and the delay matrix,
* a :class:`~repro.core.dictionary.ProbabilisticFaultDictionary` — baseline
  matrix, suspect list and stacked signatures,

in single compressed ``.npz`` files, round-trip exact.  Loading a timing
model rebuilds the identical object (delays are stored, not re-drawn, so
the sample space's RNG state is irrelevant to equality).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from ..circuits.bench_parser import parse_bench, write_bench
from ..circuits.netlist import Edge
from .instance import CircuitTiming
from .randvars import SampleSpace

__all__ = ["save_timing", "load_timing", "save_dictionary", "load_dictionary"]

PathLike = Union[str, Path]


def save_timing(timing: CircuitTiming, path: PathLike) -> None:
    """Write a timing model to ``path`` (``.npz``).

    Delay rows are stored together with their edge identities: the edge
    *order* of a circuit depends on gate insertion order, which a
    ``.bench`` round-trip does not preserve, so loading re-maps rows by
    (source, sink, pin).
    """
    edges = timing.circuit.edges
    np.savez_compressed(
        path,
        bench=np.array(write_bench(timing.circuit)),
        name=np.array(timing.circuit.name),
        n_samples=np.array(timing.space.n_samples),
        seed=np.array(timing.space.seed),
        delays=timing.delays,
        edge_sources=np.array([e.source for e in edges]),
        edge_sinks=np.array([e.sink for e in edges]),
        edge_pins=np.array([e.pin for e in edges], dtype=np.int64),
        scan_ppis=np.array([p for p, _q in timing.circuit.scan_pairs]),
        scan_ppos=np.array([q for _p, q in timing.circuit.scan_pairs]),
    )


def load_timing(path: PathLike) -> CircuitTiming:
    """Rebuild a timing model saved by :func:`save_timing`."""
    with np.load(path, allow_pickle=False) as data:
        circuit = parse_bench(str(data["bench"]), name=str(data["name"]))
        circuit.scan_pairs = list(
            zip((str(x) for x in data["scan_ppis"]), (str(x) for x in data["scan_ppos"]))
        )
        space = SampleSpace(int(data["n_samples"]), int(data["seed"]))
        saved_row = {
            Edge(str(source), str(sink), int(pin)): index
            for index, (source, sink, pin) in enumerate(
                zip(data["edge_sources"], data["edge_sinks"], data["edge_pins"])
            )
        }
        saved_delays = data["delays"]
        rows = [saved_row[edge] for edge in circuit.edges]
        return CircuitTiming(circuit, space, delays=saved_delays[rows])


def save_dictionary(dictionary, path: PathLike) -> None:
    """Write a probabilistic fault dictionary to ``path`` (``.npz``).

    The timing model is not embedded — store it separately with
    :func:`save_timing`; loading takes the timing model as an argument so
    several dictionaries (pattern sets, clocks) can share one model.
    """
    suspects = dictionary.suspects
    signatures = (
        np.stack([dictionary.signatures[edge] for edge in suspects])
        if suspects
        else np.zeros((0,) + dictionary.m_crt.shape)
    )
    np.savez_compressed(
        path,
        clk=np.array(dictionary.clk),
        m_crt=dictionary.m_crt,
        size_samples=dictionary.size_samples,
        signatures=signatures,
        suspect_sources=np.array([e.source for e in suspects]),
        suspect_sinks=np.array([e.sink for e in suspects]),
        suspect_pins=np.array([e.pin for e in suspects], dtype=np.int64),
    )


def load_dictionary(path: PathLike, timing: CircuitTiming):
    """Rebuild a dictionary saved by :func:`save_dictionary`."""
    from ..core.dictionary import ProbabilisticFaultDictionary

    with np.load(path, allow_pickle=False) as data:
        suspects = [
            Edge(str(source), str(sink), int(pin))
            for source, sink, pin in zip(
                data["suspect_sources"], data["suspect_sinks"], data["suspect_pins"]
            )
        ]
        signatures = {
            edge: data["signatures"][index]
            for index, edge in enumerate(suspects)
        }
        return ProbabilisticFaultDictionary(
            timing=timing,
            clk=float(data["clk"]),
            m_crt=data["m_crt"],
            suspects=suspects,
            signatures=signatures,
            size_samples=data["size_samples"],
        )
