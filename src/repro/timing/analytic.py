"""Analytic (moment-based) statistical STA — the Monte-Carlo cross-check.

The paper's framework [5, 17] is Monte-Carlo because analytic statistical
timing struggles with correlations.  This module provides the classic
analytic alternative for comparison and for fast estimates: arrival times
as Gaussian ``(mean, variance)`` pairs propagated with

* ``sum``: means and variances add (independence assumption),
* ``max``: Clark's moment-matching approximation [C. E. Clark, "The greatest
  of a finite set of random variables", Operations Research, 1961].

Correlation between the operands of each ``max`` can be supplied; the
circuit-level propagation assumes independence (the usual first-order
analytic compromise), which is exactly the error source the Monte-Carlo
framework avoids — quantified by :func:`compare_with_monte_carlo` and the
``analytic_vs_mc`` example/ablation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..circuits.library import GateType
from ..circuits.netlist import Circuit
from .instance import CircuitTiming
from .sta import analyze

__all__ = ["GaussianDelay", "clark_max", "analyze_analytic", "compare_with_monte_carlo"]

_SQRT_2PI = math.sqrt(2.0 * math.pi)


def _phi(x: float) -> float:
    """Standard normal pdf."""
    return math.exp(-0.5 * x * x) / _SQRT_2PI


def _cap_phi(x: float) -> float:
    """Standard normal cdf."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


@dataclass(frozen=True)
class GaussianDelay:
    """A delay random variable summarized by its first two moments."""

    mean: float
    variance: float

    def __post_init__(self) -> None:
        if self.variance < 0:
            raise ValueError("variance must be non-negative")

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def __add__(self, other: "GaussianDelay") -> "GaussianDelay":
        return GaussianDelay(self.mean + other.mean, self.variance + other.variance)

    def shifted(self, offset: float) -> "GaussianDelay":
        return GaussianDelay(self.mean + offset, self.variance)

    def critical_probability(self, clk: float) -> float:
        """``Prob(X > clk)`` under the Gaussian summary."""
        if self.variance == 0.0:
            return 1.0 if self.mean > clk else 0.0
        return 1.0 - _cap_phi((clk - self.mean) / self.std)

    def quantile(self, q: float) -> float:
        if not 0.0 < q < 1.0:
            raise ValueError("q must be in (0, 1)")
        if self.variance == 0.0:
            return self.mean
        # inverse normal CDF via binary search (avoids scipy dependency)
        lo = self.mean - 10 * self.std
        hi = self.mean + 10 * self.std
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if _cap_phi((mid - self.mean) / self.std) < q:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)


def clark_max(
    a: GaussianDelay, b: GaussianDelay, correlation: float = 0.0
) -> GaussianDelay:
    """Clark's Gaussian approximation of ``max(a, b)``.

    Exact first two moments of the max of two (possibly correlated) jointly
    Gaussian variables, re-interpreted as a Gaussian — the moment-matching
    step that makes analytic STA closed under ``max``.
    """
    if not -1.0 <= correlation <= 1.0:
        raise ValueError("correlation must be in [-1, 1]")
    theta_sq = a.variance + b.variance - 2.0 * correlation * a.std * b.std
    if theta_sq <= 1e-30:
        # (near-)perfectly correlated equal-variance operands: max is just
        # the larger-mean operand
        return a if a.mean >= b.mean else b
    theta = math.sqrt(theta_sq)
    alpha = (a.mean - b.mean) / theta
    cdf = _cap_phi(alpha)
    pdf = _phi(alpha)
    mean = a.mean * cdf + b.mean * (1.0 - cdf) + theta * pdf
    second_moment = (
        (a.mean**2 + a.variance) * cdf
        + (b.mean**2 + b.variance) * (1.0 - cdf)
        + (a.mean + b.mean) * theta * pdf
    )
    variance = max(second_moment - mean**2, 0.0)
    return GaussianDelay(mean, variance)


def analyze_analytic(
    timing: CircuitTiming,
    correlation: float = 0.0,
) -> Dict[str, GaussianDelay]:
    """Moment-based STA over the whole circuit.

    Edge moments are taken from the Monte-Carlo delay matrix (so both
    backends describe the same population); propagation assumes operand
    independence except for the constant pairwise ``correlation`` applied
    inside every ``max``.  Returns per-net Gaussian arrival summaries, plus
    the key ``"__circuit__"`` for the circuit delay.
    """
    circuit = timing.circuit
    edge_mean = timing.delays.mean(axis=1)
    edge_var = timing.delays.var(axis=1)

    offsets: Dict[str, int] = {}
    offset = 0
    for name in circuit.topological_order:
        offsets[name] = offset
        offset += len(circuit.gates[name].fanins)

    arrivals: Dict[str, GaussianDelay] = {}
    for name in circuit.topological_order:
        gate = circuit.gates[name]
        if gate.gate_type is GateType.INPUT:
            arrivals[name] = GaussianDelay(0.0, 0.0)
            continue
        base = offsets[name]
        best: Optional[GaussianDelay] = None
        for pin, fanin in enumerate(gate.fanins):
            edge = GaussianDelay(
                float(edge_mean[base + pin]), float(edge_var[base + pin])
            )
            candidate = arrivals[fanin] + edge
            best = candidate if best is None else clark_max(
                best, candidate, correlation
            )
        arrivals[name] = best if best is not None else GaussianDelay(0.0, 0.0)

    circuit_delay: Optional[GaussianDelay] = None
    for output in circuit.outputs:
        circuit_delay = (
            arrivals[output]
            if circuit_delay is None
            else clark_max(circuit_delay, arrivals[output], correlation)
        )
    arrivals["__circuit__"] = circuit_delay or GaussianDelay(0.0, 0.0)
    return arrivals


def compare_with_monte_carlo(
    timing: CircuitTiming, correlation: float = 0.0
) -> Dict[str, Tuple[float, float]]:
    """Per-output (mean error, std error) of analytic vs Monte-Carlo STA.

    Returns ``{output: (analytic_mean - mc_mean, analytic_std - mc_std)}``
    plus ``"__circuit__"``.  The systematic analytic bias (Clark + assumed
    independence vs the true correlated population) is the reproduction's
    concrete illustration of why the paper's framework is Monte-Carlo.
    """
    analytic = analyze_analytic(timing, correlation)
    mc = analyze(timing)
    comparison: Dict[str, Tuple[float, float]] = {}
    for output in timing.circuit.outputs:
        samples = mc.arrivals[output]
        comparison[output] = (
            analytic[output].mean - float(samples.mean()),
            analytic[output].std - float(samples.std()),
        )
    delay = mc.circuit_delay()
    comparison["__circuit__"] = (
        analytic["__circuit__"].mean - delay.mean,
        analytic["__circuit__"].std - delay.std,
    )
    return comparison
