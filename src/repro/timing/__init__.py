"""Statistical timing substrate: random variables, cell library, STA,
dynamic (two-vector) timing simulation, circuit instances."""

from .randvars import SampleSpace, RandomVariable
from .celllib import CellLibrary, DEFAULT_BASE_DELAYS, nominal_edge_delay
from .interconnect import RCParameters, RCAwareCellLibrary, elmore_pin_delay
from .instance import CircuitTiming, CircuitInstance
from .sta import StaResult, analyze, suggest_clock
from .dynamic import (
    TransitionSimResult,
    active_kernel,
    simulate_transition,
    simulate_transition_reference,
    resimulate_with_extra,
    resimulate_with_extra_reference,
    edge_offsets,
)
from .kernel import CompiledCircuit, PatternSchedule, compile_circuit
from .events import (
    Waveform,
    EventSimResult,
    simulate_events,
    event_behavior_matrix,
    compare_with_transition_mode,
)
from .io import save_timing, load_timing, save_dictionary, load_dictionary
from .analytic import (
    GaussianDelay,
    clark_max,
    analyze_analytic,
    compare_with_monte_carlo,
)
from .critical import (
    error_vector,
    error_matrix,
    simulate_pattern_set,
    pattern_set_delay,
    diagnosis_clock,
    PatternPair,
)

__all__ = [
    "SampleSpace",
    "RandomVariable",
    "CellLibrary",
    "DEFAULT_BASE_DELAYS",
    "nominal_edge_delay",
    "RCParameters",
    "RCAwareCellLibrary",
    "elmore_pin_delay",
    "CircuitTiming",
    "CircuitInstance",
    "StaResult",
    "analyze",
    "suggest_clock",
    "save_timing",
    "load_timing",
    "save_dictionary",
    "load_dictionary",
    "Waveform",
    "EventSimResult",
    "simulate_events",
    "event_behavior_matrix",
    "compare_with_transition_mode",
    "GaussianDelay",
    "clark_max",
    "analyze_analytic",
    "compare_with_monte_carlo",
    "TransitionSimResult",
    "active_kernel",
    "simulate_transition",
    "simulate_transition_reference",
    "resimulate_with_extra",
    "resimulate_with_extra_reference",
    "edge_offsets",
    "CompiledCircuit",
    "PatternSchedule",
    "compile_circuit",
    "error_vector",
    "error_matrix",
    "simulate_pattern_set",
    "pattern_set_delay",
    "diagnosis_clock",
    "PatternPair",
]
