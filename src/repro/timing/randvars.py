"""Sample-based random variables for statistical timing.

The paper's timing model (Definition D.1) attaches a delay random variable to
every pin-to-pin arc, explicitly allowing correlation between arcs, and the
statistical framework of [5]/[17] evaluates ``Sum`` and ``Max`` of such
variables by Monte-Carlo simulation.  We represent a random variable as a
vector of ``n_samples`` Monte-Carlo samples drawn under **common random
numbers**: sample ``s`` across *all* variables corresponds to one
manufactured chip — one *circuit instance* in the sense of Definition D.2.

With this representation the paper's algebra is exact and trivially
correlation-preserving:

* ``TL(p) = f(e_1) + ... + f(e_k)`` is elementwise addition,
* ``Ar(o) = max(p_1, ..., p_j)`` is elementwise maximum,
* the critical probability ``Prob(A > clk)`` (Definition D.6) is the sample
  fraction exceeding ``clk``.

:class:`SampleSpace` owns the sample count, the RNG and the shared *global*
process-variation factor; :class:`RandomVariable` wraps one sample vector.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

__all__ = ["SampleSpace", "RandomVariable"]

Number = Union[int, float]


class SampleSpace:
    """The Monte-Carlo sample space shared by all timing random variables.

    Holds ``n_samples`` and a seeded generator, plus one standard-normal
    *global factor* per sample.  Cell delays built through
    :meth:`correlated_delay` mix the global factor (chip-to-chip process
    shift, identical for every cell of a given sample/chip) with a fresh
    *local* factor (within-die random variation), yielding the correlated
    delay population the paper's Definition D.1 calls for.
    """

    def __init__(self, n_samples: int = 500, seed: int = 0) -> None:
        if n_samples < 1:
            raise ValueError("n_samples must be positive")
        self.n_samples = int(n_samples)
        self.seed = int(seed)
        self.rng = np.random.default_rng(seed)
        self.global_factor = self.rng.standard_normal(self.n_samples)

    def child_rng(self, *spawn_key: int) -> np.random.Generator:
        """An independent generator derived from this space's seed.

        Built on ``np.random.SeedSequence`` spawn keys, so distinct keys
        yield provably independent streams and the *same* key always
        yields the same stream — regardless of how much of ``self.rng``
        has been consumed.  This is the generator parallel workers must
        use for any private draws: worker ``w`` takes ``child_rng(w)``
        and two workers can never see identical values (the classic
        "every fork reuses the parent seed" parallel-MC bug).
        """
        if any(int(k) < 0 for k in spawn_key):
            raise ValueError("spawn_key parts must be non-negative")
        sequence = np.random.SeedSequence(
            entropy=self.seed, spawn_key=tuple(int(k) for k in spawn_key)
        )
        return np.random.default_rng(sequence)

    def spawn(self, n_children: int) -> list:
        """``n_children`` independent generators (``child_rng(0..n-1)``)."""
        if n_children < 0:
            raise ValueError("n_children must be non-negative")
        return [self.child_rng(index) for index in range(n_children)]

    def correlated_delay(
        self,
        nominal: float,
        sigma_global: float = 0.08,
        sigma_local: float = 0.05,
        floor_fraction: float = 0.05,
    ) -> "RandomVariable":
        """Draw a positive delay RV: ``nominal * (1 + sg*G + sl*L)``.

        ``G`` is the shared global factor; ``L`` is an independent local
        standard normal.  Samples are floored at ``floor_fraction * nominal``
        so delays stay strictly positive (Definition D.1 requires support in
        ``[0, +inf]``).
        """
        if nominal < 0:
            raise ValueError("nominal delay must be non-negative")
        local = self.rng.standard_normal(self.n_samples)
        samples = nominal * (
            1.0 + sigma_global * self.global_factor + sigma_local * local
        )
        np.maximum(samples, floor_fraction * nominal, out=samples)
        return RandomVariable(samples, self)

    def normal(
        self,
        mean: float,
        std: float,
        floor: Optional[float] = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> "RandomVariable":
        """Independent (local-only) normal RV, optionally floored.

        The paper's defect sizes use this family: "mean in 50%-100% of a cell
        delay and 3-sigma is 50% of the mean" (Section I).  Pass an explicit
        ``rng`` to keep the draw out of the space's own stream — callers that
        need run-to-run reproducibility independent of call order do this.
        """
        generator = rng if rng is not None else self.rng
        samples = generator.normal(mean, std, self.n_samples)
        if floor is not None:
            np.maximum(samples, floor, out=samples)
        return RandomVariable(samples, self)

    def uniform(self, low: float, high: float) -> "RandomVariable":
        return RandomVariable(self.rng.uniform(low, high, self.n_samples), self)

    def constant(self, value: float) -> "RandomVariable":
        return RandomVariable(np.full(self.n_samples, float(value)), self)

    def from_samples(self, samples: np.ndarray) -> "RandomVariable":
        return RandomVariable(samples, self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SampleSpace(n_samples={self.n_samples}, seed={self.seed})"


class RandomVariable:
    """One timing random variable: a vector of Monte-Carlo samples.

    Supports the sum/max algebra of statistical timing analysis plus the
    summary statistics the diagnosis flow needs.  Binary operations require
    both operands to share a :class:`SampleSpace` (common random numbers);
    scalars broadcast.
    """

    __slots__ = ("samples", "space")

    def __init__(self, samples: np.ndarray, space: SampleSpace) -> None:
        samples = np.asarray(samples, dtype=float)
        if samples.shape != (space.n_samples,):
            raise ValueError(
                f"samples shape {samples.shape} != ({space.n_samples},)"
            )
        self.samples = samples
        self.space = space

    # ------------------------------------------------------------------
    def _coerce(self, other: Union["RandomVariable", Number]) -> np.ndarray:
        if isinstance(other, RandomVariable):
            if other.space is not self.space:
                raise ValueError("random variables live in different sample spaces")
            return other.samples
        return np.full(self.space.n_samples, float(other))

    def __add__(self, other: Union["RandomVariable", Number]) -> "RandomVariable":
        return RandomVariable(self.samples + self._coerce(other), self.space)

    __radd__ = __add__

    def __sub__(self, other: Union["RandomVariable", Number]) -> "RandomVariable":
        return RandomVariable(self.samples - self._coerce(other), self.space)

    def __mul__(self, scalar: Number) -> "RandomVariable":
        return RandomVariable(self.samples * float(scalar), self.space)

    __rmul__ = __mul__

    def maximum(self, other: Union["RandomVariable", Number]) -> "RandomVariable":
        """The ``max`` of statistical STA — elementwise, correlation-exact."""
        return RandomVariable(np.maximum(self.samples, self._coerce(other)), self.space)

    def minimum(self, other: Union["RandomVariable", Number]) -> "RandomVariable":
        return RandomVariable(np.minimum(self.samples, self._coerce(other)), self.space)

    @staticmethod
    def max_of(variables: Sequence["RandomVariable"]) -> "RandomVariable":
        if not variables:
            raise ValueError("max_of needs at least one variable")
        space = variables[0].space
        for v in variables:
            if v.space is not space:
                raise ValueError("random variables live in different sample spaces")
        stacked = np.stack([v.samples for v in variables])
        return RandomVariable(stacked.max(axis=0), space)

    @staticmethod
    def sum_of(variables: Sequence["RandomVariable"]) -> "RandomVariable":
        if not variables:
            raise ValueError("sum_of needs at least one variable")
        space = variables[0].space
        for v in variables:
            if v.space is not space:
                raise ValueError("random variables live in different sample spaces")
        return RandomVariable(
            np.sum([v.samples for v in variables], axis=0), space
        )

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    @property
    def std(self) -> float:
        return float(self.samples.std())

    def quantile(self, q: float) -> float:
        return float(np.quantile(self.samples, q))

    def critical_probability(self, clk: float) -> float:
        """``Prob(self > clk)`` — Definition D.6."""
        return float(np.mean(self.samples > clk))

    def cdf(self, value: float) -> float:
        return float(np.mean(self.samples <= value))

    def prob_greater(self, other: Union["RandomVariable", Number]) -> float:
        """``Prob(self > other)`` under common random numbers."""
        return float(np.mean(self.samples > self._coerce(other)))

    def histogram(self, bins: int = 30):
        """(counts, bin_edges) — convenience for the figure experiments."""
        return np.histogram(self.samples, bins=bins)

    def sample(self, index: int) -> float:
        """The value this RV takes on circuit instance ``index``."""
        return float(self.samples[index])

    def __len__(self) -> int:
        return self.space.n_samples

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RandomVariable(mean={self.mean:.4g}, std={self.std:.4g}, "
            f"n={self.space.n_samples})"
        )
