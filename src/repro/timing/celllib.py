"""Statistical cell delay library.

The paper pre-characterizes cells with a Monte-Carlo SPICE (ELDO) flow for a
0.25um/2.5V CMOS process: pin-to-pin delay random variables indexed by input
transition time and output load (Section H-1).  Without SPICE we substitute a
parametric library (see DESIGN.md): each pin-to-pin arc gets a nominal delay

    nominal = base(cell type) + fanin_penalty * (n_fanins - 1)
              + load_factor * (fanout count of the driving net)

and the statistical population around the nominal mixes a shared global
process factor with a per-arc local factor (sigma/mean of 5-15%, typical of
the era's DSM variation folklore).  All downstream tools consume only the
per-edge sample vectors, so any positive correlated family exercises the
same code paths as the SPICE-characterized library.

Delays are in normalized *delay units* (a nominal 2-input NAND pin-to-pin
delay is 1.0); the paper reports no absolute scale, only probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..circuits.library import GateType
from ..circuits.netlist import Circuit, Edge
from .randvars import SampleSpace

__all__ = ["CellLibrary", "DEFAULT_BASE_DELAYS", "nominal_edge_delay"]

#: Nominal pin-to-pin base delays per cell type, in delay units.
DEFAULT_BASE_DELAYS: Dict[GateType, float] = {
    GateType.BUF: 0.6,
    GateType.OUTPUT: 0.0,
    GateType.NOT: 0.5,
    GateType.NAND: 1.0,
    GateType.AND: 1.3,
    GateType.NOR: 1.1,
    GateType.OR: 1.4,
    GateType.XOR: 1.8,
    GateType.XNOR: 1.8,
    GateType.DFF: 0.0,
}


@dataclass
class CellLibrary:
    """Parametric statistical cell library (Monte-Carlo-SPICE substitute).

    ``sigma_global``/``sigma_local`` are relative standard deviations of the
    chip-wide and per-arc variation components.  ``fanin_penalty`` models the
    stack-depth cost of wide gates; ``load_factor`` models output loading by
    the driving net's fanout count (the library index the paper mentions).
    """

    base_delays: Dict[GateType, float] = field(
        default_factory=lambda: dict(DEFAULT_BASE_DELAYS)
    )
    fanin_penalty: float = 0.15
    load_factor: float = 0.08
    sigma_global: float = 0.03
    sigma_local: float = 0.04

    def nominal_pin_delay(self, circuit: Circuit, edge: Edge) -> float:
        """Nominal pin-to-pin delay of ``edge`` (no variation)."""
        gate = circuit.gates[edge.sink]
        base = self.base_delays.get(gate.gate_type)
        if base is None:
            raise KeyError(f"no delay characterization for {gate.gate_type}")
        fanins = max(len(gate.fanins), 1)
        load = len(circuit.fanouts[edge.source])
        return base + self.fanin_penalty * (fanins - 1) + self.load_factor * load

    def mean_cell_delay(self, circuit: Circuit) -> float:
        """Average nominal pin-to-pin delay over all edges.

        The paper sizes injected defects relative to "a cell delay"
        (Section I); this is the reference value the defect models use.
        """
        nominals = [self.nominal_pin_delay(circuit, edge) for edge in circuit.edges]
        return float(np.mean(nominals)) if nominals else 0.0

    def sample_edge_delays(
        self, circuit: Circuit, space: SampleSpace, rng=None
    ) -> np.ndarray:
        """Draw the full ``(n_edges, n_samples)`` delay matrix for a circuit.

        Row order follows ``circuit.edges``.  Column ``s`` is the delay
        assignment of circuit instance ``s`` (Definition D.2): globally
        shifted by the shared process factor, locally jittered per arc.

        The local jitter comes from ``rng`` when given and from the
        space's own stream otherwise.  Passing an explicit generator
        (e.g. ``space.child_rng(...)``) makes the matrix independent of
        how much of ``space.rng`` other callers have already consumed —
        required when several workers materialize models concurrently.
        """
        edges = circuit.edges
        nominal = np.array(
            [self.nominal_pin_delay(circuit, edge) for edge in edges]
        )
        generator = rng if rng is not None else space.rng
        local = generator.standard_normal((len(edges), space.n_samples))
        delays = nominal[:, None] * (
            1.0
            + self.sigma_global * space.global_factor[None, :]
            + self.sigma_local * local
        )
        np.maximum(delays, 0.05 * nominal[:, None], out=delays)
        return delays


def nominal_edge_delay(
    circuit: Circuit, edge: Edge, library: Optional[CellLibrary] = None
) -> float:
    """Convenience wrapper: nominal delay of one edge under a library."""
    return (library or CellLibrary()).nominal_pin_delay(circuit, edge)
