"""The statistical circuit model ``C`` and circuit instances ``C_in``.

:class:`CircuitTiming` binds a structural :class:`Circuit` to its delay
function ``f``: one random variable per pin-to-pin edge, materialized as an
``(n_edges, n_samples)`` sample matrix under common random numbers.  This is
the CAD-side predictor of Definition D.1.

:class:`CircuitInstance` is Definition D.2: a single manufactured chip, i.e.
one fixed delay value per edge.  Under common random numbers, instance ``s``
is exactly column ``s`` of the sample matrix — the statistical model and the
population of chips it predicts are two views of the same array.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..circuits.netlist import Circuit, Edge
from .celllib import CellLibrary
from .randvars import RandomVariable, SampleSpace

__all__ = ["CircuitTiming", "CircuitInstance"]


class CircuitTiming:
    """Statistical timing view of a circuit: the 5-tuple ``(V,E,I,O,f)``.

    ``delays[e, s]`` is the delay of edge ``e`` (in ``circuit.edges`` order)
    on circuit instance ``s``.  Construction draws the matrix from a
    :class:`CellLibrary`; tests may pass an explicit matrix instead.
    """

    def __init__(
        self,
        circuit: Circuit,
        space: SampleSpace,
        library: Optional[CellLibrary] = None,
        delays: Optional[np.ndarray] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.circuit = circuit
        self.space = space
        self.library = library or CellLibrary()
        if delays is None:
            # ``rng`` (e.g. ``space.child_rng(...)``) decouples the draw
            # from the space's shared stream: workers materializing timing
            # models concurrently must not race over ``space.rng``'s state.
            delays = self.library.sample_edge_delays(circuit, space, rng=rng)
        delays = np.asarray(delays, dtype=float)
        expected = (len(circuit.edges), space.n_samples)
        if delays.shape != expected:
            raise ValueError(f"delays shape {delays.shape} != {expected}")
        self.delays = delays
        self.edge_index: Dict[Edge, int] = {
            edge: index for index, edge in enumerate(circuit.edges)
        }

    # ------------------------------------------------------------------
    def edge_delay(self, edge: Edge) -> RandomVariable:
        """The pin-to-pin delay random variable ``f(edge)``."""
        return RandomVariable(self.delays[self.edge_index[edge]], self.space)

    def mean_cell_delay(self) -> float:
        """Reference "cell delay" for defect sizing (Section I)."""
        return float(self.delays.mean())

    def instance(self, sample_index: int) -> "CircuitInstance":
        """Circuit instance ``C_in`` = column ``sample_index`` of the model."""
        if not 0 <= sample_index < self.space.n_samples:
            raise IndexError("sample index out of range")
        return CircuitInstance(self, sample_index)

    def nominal_delays(self) -> np.ndarray:
        """Per-edge nominal (library) delays, in ``circuit.edges`` order."""
        return np.array(
            [
                self.library.nominal_pin_delay(self.circuit, edge)
                for edge in self.circuit.edges
            ]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitTiming({self.circuit.name!r}, edges={self.delays.shape[0]}, "
            f"samples={self.delays.shape[1]})"
        )


class CircuitInstance:
    """A single chip: fixed pin-to-pin delays (Definition D.2).

    Wraps a (timing model, sample index) pair rather than copying the delay
    column; the defect-injection flow adds the defect delta on top when it
    simulates the instance (:mod:`repro.defects.faultsim`).
    """

    def __init__(self, timing: CircuitTiming, sample_index: int) -> None:
        self.timing = timing
        self.sample_index = int(sample_index)

    @property
    def circuit(self) -> Circuit:
        return self.timing.circuit

    def delay_vector(self) -> np.ndarray:
        """Per-edge fixed delays ``f_in``, in ``circuit.edges`` order."""
        return self.timing.delays[:, self.sample_index].copy()

    def edge_delay(self, edge: Edge) -> float:
        return float(
            self.timing.delays[self.timing.edge_index[edge], self.sample_index]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitInstance({self.circuit.name!r}, "
            f"sample={self.sample_index})"
        )
