"""Critical probabilities, error vectors and error matrices (D.6, D.7).

Thin, well-named wrappers over the dynamic simulator that produce the
objects the paper's algorithms are phrased in:

* ``Err(C, v, clk)`` — per-output critical-probability vector for one test,
* ``Err_M(C, TP, clk)`` — the ``|O| x |TP|`` error (probability) matrix.

The probabilistic fault dictionary (error matrices under injected suspect
defects) lives in :mod:`repro.core.dictionary`, which reuses the per-pattern
base simulations produced here.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .dynamic import TransitionSimResult, simulate_transition
from .instance import CircuitTiming

__all__ = [
    "error_vector",
    "error_matrix",
    "simulate_pattern_set",
    "pattern_set_delay",
    "diagnosis_clock",
    "PatternPair",
]

#: A two-vector delay test: (v1, v2) arrays over the primary inputs.
PatternPair = Tuple[np.ndarray, np.ndarray]


def error_vector(timing: CircuitTiming, pattern: PatternPair, clk: float) -> np.ndarray:
    """``Err(C, v, clk)``: critical probability per primary output."""
    v1, v2 = pattern
    return simulate_transition(timing, v1, v2).error_vector(clk)


def _simulate_chunk(payload, indices) -> List[TransitionSimResult]:
    """Worker body for the parallel pattern fan-out (top-level: picklable)."""
    timing, patterns = payload
    return [
        simulate_transition(timing, patterns[index][0], patterns[index][1])
        for index in indices
    ]


def simulate_pattern_set(
    timing: CircuitTiming,
    patterns: Sequence[PatternPair],
    parallel=None,
) -> List[TransitionSimResult]:
    """Full-width dynamic simulations, one per two-vector test.

    Patterns are independent, so the loop fans out through
    :mod:`repro.core.parallel` when ``parallel`` (a ``ParallelConfig`` or
    backend name) asks for it; results keep pattern order, so downstream
    consumers are unaffected by worker scheduling.  The default stays
    serial — per-pattern simulations are vectorized over samples already,
    and the fan-out only pays off for large pattern sets.
    """
    patterns = list(patterns)
    if parallel is not None:
        # Imported lazily: repro.core packages import this module at load
        # time, so a top-level import would be circular.
        from ..core.parallel import map_chunked, resolve_parallel

        return map_chunked(
            _simulate_chunk,
            (timing, patterns),
            len(patterns),
            resolve_parallel(parallel),
        )
    return [simulate_transition(timing, v1, v2) for v1, v2 in patterns]


def pattern_set_delay(
    simulations: Sequence[TransitionSimResult],
    targets: Optional[Sequence[Tuple[int, str]]] = None,
) -> np.ndarray:
    """Per-sample delay of a pattern set: ``Delta(Induced(Path_TP))``.

    For each Monte-Carlo sample (chip), the latest settle time over every
    sensitized output transition of every pattern — the dynamic analogue of
    the circuit delay, restricted to what the tests actually exercise
    (Definition D.5's ``Delta(Induced(Path_TP))``).

    ``targets`` optionally restricts the maximum to specific
    (pattern index, output net) observation points — e.g. the endpoints of
    the paths the tests were generated for.
    """
    if not simulations:
        raise ValueError("need at least one simulation")
    width = simulations[0].width
    delay = np.zeros(width)
    if targets is None:
        for sim in simulations:
            for net in sim.timing.circuit.outputs:
                if sim.transitioned(net):
                    np.maximum(delay, sim.stable[net], out=delay)
        return delay
    for index, net in targets:
        sim = simulations[index]
        if sim.transitioned(net):
            np.maximum(delay, sim.stable[net], out=delay)
    return delay


def diagnosis_clock(
    timing: CircuitTiming,
    patterns: Sequence[PatternPair],
    quantile: float = 0.9,
    simulations: Optional[Sequence[TransitionSimResult]] = None,
    targets: Optional[Sequence[Tuple[int, str]]] = None,
) -> float:
    """Cut-off ``clk`` placed tight against the tested paths.

    Delay *diagnosis* observes failures, so the cut-off must sit where the
    sensitized paths of the pattern set actually live — a quantile of the
    healthy population's pattern-set delay.  Healthy chips then pass those
    observation points with probability ~``quantile`` while a segment defect
    on a tested path has a real chance of crossing the cut-off (the paper's
    example explicitly works with nonzero healthy critical probabilities,
    Section E).  On a tester this corresponds to the standard
    clock-sweeping practice of tightening the capture clock until failures
    appear.

    ``targets`` restricts the calibration to specific (pattern, output)
    observation points — normally the endpoints of the targeted paths.
    Without it the cut-off is set by the longest *incidentally* sensitized
    path in the whole set, which in circuits with dispersed path lengths
    can sit far above every path through the defect site, making small
    defects invisible.  With it, incidental longer paths simply fail on
    every chip: those observations carry no per-suspect information (their
    signature entries are ~0 for all suspects) and the error functions
    absorb them — this is exactly why the paper builds the diagnosis on
    ``M_crt``-relative signatures instead of raw failures.
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must be in (0, 1)")
    if simulations is None:
        simulations = simulate_pattern_set(timing, patterns)
    return float(np.quantile(pattern_set_delay(simulations, targets), quantile))


def error_matrix(
    timing: CircuitTiming,
    patterns: Sequence[PatternPair],
    clk: float,
    simulations: Optional[Sequence[TransitionSimResult]] = None,
) -> np.ndarray:
    """``Err_M(C, TP, clk)``: the ``|O| x |TP|`` error probability matrix.

    Pass precomputed ``simulations`` (from :func:`simulate_pattern_set`) to
    evaluate several clock periods without re-simulating.
    """
    if simulations is None:
        simulations = simulate_pattern_set(timing, patterns)
    columns = [sim.error_vector(clk) for sim in simulations]
    if not columns:
        return np.zeros((len(timing.circuit.outputs), 0))
    return np.stack(columns, axis=1)
