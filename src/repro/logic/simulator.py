"""Bit-parallel gate-level logic simulation.

Evaluates a frozen combinational :class:`~repro.circuits.netlist.Circuit` on
many patterns at once by packing 64 patterns per ``uint64`` word — the
classic parallel-pattern single-fault technique.  This simulator provides:

* :func:`simulate` — full-circuit pattern-parallel simulation,
* :func:`simulate_cone` — resimulation of a fanout cone with a value
  override (used for stuck-at fault simulation and critical path tracing),
* :class:`LogicSimResult` — net values as boolean matrices.

Timing-aware simulation lives in :mod:`repro.timing.dynamic`; this module is
pure logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..circuits.library import GateType, eval_gate_bits
from ..circuits.netlist import Circuit

__all__ = ["LogicSimResult", "pack_patterns", "unpack_words", "simulate", "simulate_cone"]


def pack_patterns(patterns: np.ndarray) -> np.ndarray:
    """Pack an ``(n_patterns, n_inputs)`` 0/1 matrix into uint64 words.

    Returns shape ``(n_inputs, n_words)`` with pattern ``p`` stored in bit
    ``p % 64`` of word ``p // 64`` — i.e. one packed row per input.
    """
    patterns = np.asarray(patterns, dtype=np.uint8)
    if patterns.ndim != 2:
        raise ValueError("patterns must be a 2-D (n_patterns, n_inputs) array")
    bits = np.packbits(patterns.T, axis=1, bitorder="little")
    n_words = (bits.shape[1] + 7) // 8
    padded = np.zeros((bits.shape[0], n_words * 8), dtype=np.uint8)
    padded[:, : bits.shape[1]] = bits
    return padded.view(np.uint64).reshape(bits.shape[0], n_words)


def unpack_words(words: np.ndarray, n_patterns: int) -> np.ndarray:
    """Inverse of :func:`pack_patterns` for a single net's word row."""
    as_bytes = words.astype(np.uint64).tobytes()
    bits = np.unpackbits(np.frombuffer(as_bytes, dtype=np.uint8), bitorder="little")
    return bits[:n_patterns].astype(bool)


@dataclass
class LogicSimResult:
    """Values of every net for every pattern.

    ``words[net]`` is the packed uint64 row; :meth:`values` unpacks to a
    boolean vector, :meth:`output_matrix` builds the ``(|O|, n_patterns)``
    response matrix the diagnosis flow consumes.
    """

    circuit: Circuit
    n_patterns: int
    words: Dict[str, np.ndarray]

    def values(self, net: str) -> np.ndarray:
        return unpack_words(self.words[net], self.n_patterns)

    def value(self, net: str, pattern_index: int) -> int:
        word = int(self.words[net][pattern_index // 64])
        return (word >> (pattern_index % 64)) & 1

    def output_matrix(self) -> np.ndarray:
        return np.stack([self.values(net) for net in self.circuit.outputs])


def simulate(circuit: Circuit, patterns: np.ndarray) -> LogicSimResult:
    """Simulate all patterns; ``patterns`` is ``(n_patterns, n_inputs)`` 0/1.

    Pattern column order follows ``circuit.inputs``.
    """
    patterns = np.asarray(patterns)
    if patterns.ndim == 1:
        patterns = patterns.reshape(1, -1)
    if patterns.shape[1] != len(circuit.inputs):
        raise ValueError(
            f"pattern width {patterns.shape[1]} != number of inputs "
            f"{len(circuit.inputs)}"
        )
    packed = pack_patterns(patterns)
    words: Dict[str, np.ndarray] = {}
    for index, net in enumerate(circuit.inputs):
        words[net] = packed[index]
    for name in circuit.topological_order:
        gate = circuit.gates[name]
        if gate.gate_type is GateType.INPUT:
            continue
        words[name] = eval_gate_bits(
            gate.gate_type, [words[fanin] for fanin in gate.fanins]
        )
    return LogicSimResult(circuit, patterns.shape[0], words)


def simulate_cone(
    result: LogicSimResult,
    override_net: str,
    override_words: np.ndarray,
    observe: Optional[Sequence[str]] = None,
) -> Dict[str, np.ndarray]:
    """Resimulate the fanout cone of ``override_net`` with its value replaced.

    Returns packed words for every net in the cone (others are unchanged and
    can be read from ``result``).  ``observe`` restricts the returned dict to
    the listed nets (they must lie in the cone or be unchanged; unchanged
    nets are returned from the base result).  This is the workhorse for
    bit-parallel stuck-at fault simulation.
    """
    circuit = result.circuit
    cone = set(circuit.fanout_cone(override_net))
    patched: Dict[str, np.ndarray] = {override_net: np.asarray(override_words)}

    def read(net: str) -> np.ndarray:
        return patched.get(net, result.words[net])

    for name in circuit.topological_order:
        if name not in cone or name == override_net:
            continue
        gate = circuit.gates[name]
        patched[name] = eval_gate_bits(
            gate.gate_type, [read(fanin) for fanin in gate.fanins]
        )
    if observe is None:
        return patched
    return {net: read(net) for net in observe}
