"""SCOAP testability measures (Goldstein 1979).

The classic static controllability/observability metrics:

* ``CC0(net)`` / ``CC1(net)`` — the minimum "effort" (number of primary
  input assignments, roughly) to set the net to 0 / 1,
* ``CO(net)`` — the effort to propagate the net's value to an output.

Three uses inside this repository:

* ATPG guidance: the justifier's backtrace can pick the *easiest* X-input
  (lowest relevant CC) rather than the first one, cutting backtracks on
  hard instances (:class:`repro.atpg.justify.Justifier` accepts the scores
  via ``backtrace_guidance``),
* testability profiling of generated circuits (the test-suite asserts the
  synthetic benchmarks stay in a healthy SCOAP range, guarding the
  generator against regressions toward untestable structures),
* diagnosis priors: hard-to-observe segments are structurally less likely
  to have produced the observed failures.

Conventions: inputs have CC0 = CC1 = 1; a gate adds 1 per level; CO of an
output is 0.  Values are capped at ``INFINITY`` (redundant/unreachable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..circuits.library import CONTROLLING_VALUE, GateType
from ..circuits.netlist import Circuit

__all__ = ["ScoapMeasures", "compute_scoap", "INFINITY"]

#: Sentinel for "effectively uncontrollable/unobservable".
INFINITY = 10**9


@dataclass
class ScoapMeasures:
    """Per-net SCOAP numbers for one circuit."""

    cc0: Dict[str, int]
    cc1: Dict[str, int]
    co: Dict[str, int]

    def controllability(self, net: str, value: int) -> int:
        return self.cc1[net] if value else self.cc0[net]

    def hardest_nets(self, count: int = 10) -> List[Tuple[str, int]]:
        """Nets ranked by combined testability effort (hardest first)."""
        scored = [
            (net, min(self.cc0[net], INFINITY) + min(self.cc1[net], INFINITY)
             + min(self.co[net], INFINITY))
            for net in self.cc0
        ]
        return sorted(scored, key=lambda item: -item[1])[:count]


def _gate_controllability(
    gate_type: GateType, fanin_cc0: List[int], fanin_cc1: List[int]
) -> Tuple[int, int]:
    """(CC0, CC1) of a gate output from its fanin controllabilities."""
    if gate_type in (GateType.BUF, GateType.OUTPUT):
        return fanin_cc0[0] + 1, fanin_cc1[0] + 1
    if gate_type is GateType.NOT:
        return fanin_cc1[0] + 1, fanin_cc0[0] + 1
    controlling = CONTROLLING_VALUE[gate_type]
    if controlling is not None:
        if controlling == 0:  # AND / NAND
            controlled = min(fanin_cc0) + 1          # one input at 0
            non_controlled = sum(fanin_cc1) + 1      # all inputs at 1
        else:  # OR / NOR
            controlled = min(fanin_cc1) + 1
            non_controlled = sum(fanin_cc0) + 1
        if gate_type in (GateType.AND, GateType.OR):
            base0, base1 = (
                (controlled, non_controlled)
                if controlling == 0
                else (non_controlled, controlled)
            )
        else:  # NAND / NOR invert
            base0, base1 = (
                (non_controlled, controlled)
                if controlling == 0
                else (controlled, non_controlled)
            )
        return min(base0, INFINITY), min(base1, INFINITY)
    # XOR / XNOR (2+ inputs): parity — enumerate cheapest parity assignment
    even = 0  # cost of cheapest even-parity assignment
    odd = INFINITY
    for cc0, cc1 in zip(fanin_cc0, fanin_cc1):
        new_even = min(even + cc0, odd + cc1)
        new_odd = min(even + cc1, odd + cc0)
        even, odd = min(new_even, INFINITY), min(new_odd, INFINITY)
    if gate_type is GateType.XOR:
        return even + 1, odd + 1
    return odd + 1, even + 1


def compute_scoap(circuit: Circuit) -> ScoapMeasures:
    """Compute SCOAP CC0/CC1/CO for every net of a combinational circuit."""
    cc0: Dict[str, int] = {}
    cc1: Dict[str, int] = {}
    for name in circuit.topological_order:
        gate = circuit.gates[name]
        if gate.gate_type is GateType.INPUT:
            cc0[name] = 1
            cc1[name] = 1
            continue
        cc0[name], cc1[name] = _gate_controllability(
            gate.gate_type,
            [cc0[f] for f in gate.fanins],
            [cc1[f] for f in gate.fanins],
        )

    co: Dict[str, int] = {name: INFINITY for name in circuit.gates}
    for output in circuit.outputs:
        co[output] = 0
    for name in reversed(circuit.topological_order):
        gate = circuit.gates[name]
        if gate.gate_type is GateType.INPUT:
            continue
        out_co = co[name]
        if out_co >= INFINITY:
            continue
        controlling = CONTROLLING_VALUE[gate.gate_type]
        for pin, fanin in enumerate(gate.fanins):
            if gate.gate_type in (GateType.BUF, GateType.OUTPUT, GateType.NOT):
                side_cost = 0
            elif controlling is not None:
                # other inputs must hold non-controlling values
                side_cost = sum(
                    (cc1 if controlling == 0 else cc0)[other]
                    for other_pin, other in enumerate(gate.fanins)
                    if other_pin != pin
                )
            else:  # XOR family: side inputs at any known value (pick cheaper)
                side_cost = sum(
                    min(cc0[other], cc1[other])
                    for other_pin, other in enumerate(gate.fanins)
                    if other_pin != pin
                )
            candidate = min(out_co + side_cost + 1, INFINITY)
            if candidate < co[fanin]:
                co[fanin] = candidate
    return ScoapMeasures(cc0, cc1, co)
