"""Logic-domain simulation and fault models."""

from .simulator import (
    LogicSimResult,
    pack_patterns,
    unpack_words,
    simulate,
    simulate_cone,
)
from .testability import ScoapMeasures, compute_scoap, INFINITY
from .faults import (
    StuckAtFault,
    TransitionFault,
    all_stuck_at_faults,
    all_transition_faults,
    collapse_stuck_at_faults,
    detection_matrix,
    stuck_at_response,
    transition_detection_matrix,
    fault_resolution_classes,
)

__all__ = [
    "LogicSimResult",
    "pack_patterns",
    "unpack_words",
    "simulate",
    "simulate_cone",
    "StuckAtFault",
    "TransitionFault",
    "all_stuck_at_faults",
    "all_transition_faults",
    "collapse_stuck_at_faults",
    "ScoapMeasures",
    "compute_scoap",
    "INFINITY",
    "detection_matrix",
    "stuck_at_response",
    "transition_detection_matrix",
    "fault_resolution_classes",
]
