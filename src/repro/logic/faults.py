"""Logic-domain fault models: stuck-at and (gross-delay) transition faults.

These are the models of the *traditional* diagnosis world the paper contrasts
against (Sections B and C).  They serve three roles in the reproduction:

* the logic-only diagnosis baseline (:mod:`repro.core.baselines`),
* fault-resolution analysis of pattern sets (Section C's argument that logic
  resolution is not timing resolution),
* transition-fault detection as the *logic* precondition of delay detection
  (a pattern pair can only detect a delay defect on a net it launches a
  transition through and propagates to an output).

Delay-defect behaviour itself is simulated statistically in
:mod:`repro.defects.faultsim`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..circuits.library import GateType
from ..circuits.netlist import Circuit
from .simulator import LogicSimResult, simulate, simulate_cone

__all__ = [
    "StuckAtFault",
    "TransitionFault",
    "all_stuck_at_faults",
    "all_transition_faults",
    "collapse_stuck_at_faults",
    "detection_matrix",
    "stuck_at_response",
    "transition_detection_matrix",
    "fault_resolution_classes",
]


@dataclass(frozen=True)
class StuckAtFault:
    """Net ``net`` permanently stuck at ``value`` (0 or 1)."""

    net: str
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError("stuck value must be 0 or 1")

    def __str__(self) -> str:
        return f"{self.net}/sa{self.value}"


@dataclass(frozen=True)
class TransitionFault:
    """Gross-delay fault on ``net``: slow-to-rise (``rising=True``) or fall.

    Detected by a pattern pair that launches the corresponding transition on
    the net and propagates the *final* value to an output — equivalently, the
    second vector detects ``net`` stuck-at the initial value.
    """

    net: str
    rising: bool

    def __str__(self) -> str:
        return f"{self.net}/{'str' if self.rising else 'stf'}"

    @property
    def initial_value(self) -> int:
        return 0 if self.rising else 1

    @property
    def final_value(self) -> int:
        return 1 if self.rising else 0


def all_stuck_at_faults(circuit: Circuit) -> List[StuckAtFault]:
    """Both polarities on every net (no fault collapsing; the paper assumes
    dictionary storage is not the bottleneck, Section B question 3)."""
    return [
        StuckAtFault(net, value) for net in circuit.gates for value in (0, 1)
    ]


def all_transition_faults(circuit: Circuit) -> List[TransitionFault]:
    return [
        TransitionFault(net, rising)
        for net in circuit.gates
        for rising in (True, False)
    ]


def stuck_at_response(
    good: LogicSimResult, fault: StuckAtFault
) -> np.ndarray:
    """Output response matrix ``(|O|, n_patterns)`` under ``fault``."""
    circuit = good.circuit
    n_words = next(iter(good.words.values())).shape[0]
    forced = (
        np.full(n_words, np.uint64(0xFFFFFFFFFFFFFFFF))
        if fault.value == 1
        else np.zeros(n_words, dtype=np.uint64)
    )
    patched = simulate_cone(good, fault.net, forced, observe=circuit.outputs)
    from .simulator import unpack_words

    return np.stack(
        [unpack_words(patched[net], good.n_patterns) for net in circuit.outputs]
    )


def detection_matrix(
    circuit: Circuit,
    patterns: np.ndarray,
    faults: Optional[Sequence[StuckAtFault]] = None,
) -> Tuple[np.ndarray, LogicSimResult]:
    """Stuck-at detection matrix ``D[f, p] = 1`` iff pattern p detects fault f.

    Returns the matrix and the good-circuit simulation for reuse.  This is
    the logic-domain fault dictionary: the full per-output signatures can be
    recovered via :func:`stuck_at_response` when needed.
    """
    good = simulate(circuit, patterns)
    good_outputs = good.output_matrix()
    if faults is None:
        faults = all_stuck_at_faults(circuit)
    rows = []
    for fault in faults:
        faulty = stuck_at_response(good, fault)
        rows.append((faulty != good_outputs).any(axis=0))
    return np.stack(rows) if rows else np.zeros((0, patterns.shape[0]), bool), good


def transition_detection_matrix(
    circuit: Circuit,
    pattern_pairs: np.ndarray,
    faults: Optional[Sequence[TransitionFault]] = None,
) -> np.ndarray:
    """Transition-fault detection matrix for two-vector tests.

    ``pattern_pairs`` has shape ``(n_tests, 2, n_inputs)``; test ``t``
    detects a slow-to-rise fault on net ``n`` iff vector 1 sets ``n = 0``,
    vector 2 sets ``n = 1``, and vector 2 propagates ``n`` stuck-at-0 to some
    output (dually for slow-to-fall).  This is the standard
    transition-fault condition — gross delay, no timing.
    """
    pattern_pairs = np.asarray(pattern_pairs)
    if pattern_pairs.ndim != 3 or pattern_pairs.shape[1] != 2:
        raise ValueError("pattern_pairs must have shape (n_tests, 2, n_inputs)")
    if faults is None:
        faults = all_transition_faults(circuit)
    first = simulate(circuit, pattern_pairs[:, 0, :])
    second = simulate(circuit, pattern_pairs[:, 1, :])
    good_outputs = second.output_matrix()
    detected = np.zeros((len(faults), pattern_pairs.shape[0]), dtype=bool)
    # Group by (net, stuck value of the final vector) to share cone resims.
    response_cache: Dict[Tuple[str, int], np.ndarray] = {}
    for index, fault in enumerate(faults):
        initial = first.values(fault.net)
        final = second.values(fault.net)
        launches = (initial == bool(fault.initial_value)) & (
            final == bool(fault.final_value)
        )
        if not launches.any():
            continue
        key = (fault.net, fault.initial_value)
        if key not in response_cache:
            response_cache[key] = stuck_at_response(
                second, StuckAtFault(fault.net, fault.initial_value)
            )
        propagates = (response_cache[key] != good_outputs).any(axis=0)
        detected[index] = launches & propagates
    return detected


def collapse_stuck_at_faults(circuit: Circuit) -> List[StuckAtFault]:
    """Structural equivalence collapsing of the stuck-at fault universe.

    Classic gate-local rules merge equivalent faults into one class each:

    * wire faults: an input pin fault on a single-fanout net is equivalent
      to the corresponding fault on the driving net (we enumerate faults on
      *nets*, so this is implicit in the net-based universe),
    * AND/NAND: any input stuck-at-0 == output stuck-at-(0/1 resp.),
    * OR/NOR:   any input stuck-at-1 == output stuck-at-(1/0 resp.),
    * NOT/BUF:  input faults == (possibly inverted) output faults.

    Returns one representative :class:`StuckAtFault` per equivalence class
    (the class member on the topologically earliest net, lowest polarity),
    typically collapsing the universe by 35-60% — the standard saving the
    paper's "storing the dictionary is not an issue" assumption leans on.
    """
    parent: Dict[Tuple[str, int], Tuple[str, int]] = {}

    def find(item: Tuple[str, int]) -> Tuple[str, int]:
        parent.setdefault(item, item)
        root = item
        while parent[root] != root:
            root = parent[root]
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(a: Tuple[str, int], b: Tuple[str, int]) -> None:
        parent[find(a)] = find(b)

    for name in circuit.topological_order:
        gate = circuit.gates[name]
        if gate.gate_type is GateType.INPUT:
            continue
        single_input = gate.gate_type in (
            GateType.NOT, GateType.BUF, GateType.OUTPUT, GateType.DFF
        )
        if single_input:
            inverted = gate.gate_type is GateType.NOT
            fanin = gate.fanins[0]
            if len(circuit.fanouts[fanin]) == 1:
                union((fanin, 0), (name, 1 if inverted else 0))
                union((fanin, 1), (name, 0 if inverted else 1))
            continue
        from ..circuits.library import CONTROLLING_VALUE, INVERTING

        controlling = CONTROLLING_VALUE.get(gate.gate_type)
        if controlling is None:
            continue  # XOR family collapses nothing gate-locally
        inverted = gate.gate_type in INVERTING
        controlled_output = (1 - controlling) if inverted else controlling
        for fanin in gate.fanins:
            # input stuck-at-controlling == output stuck-at-controlled value,
            # but only via a fanout-free connection
            if len(circuit.fanouts[fanin]) == 1:
                union((fanin, controlling), (name, controlled_output))

    order = {name: index for index, name in enumerate(circuit.topological_order)}
    representatives: Dict[Tuple[str, int], Tuple[str, int]] = {}
    for net in circuit.gates:
        for value in (0, 1):
            root = find((net, value))
            best = representatives.get(root)
            candidate = (net, value)
            if best is None or (order[candidate[0]], candidate[1]) < (
                order[best[0]], best[1]
            ):
                representatives[root] = candidate
    return sorted(
        (StuckAtFault(net, value) for net, value in representatives.values()),
        key=lambda fault: (order[fault.net], fault.value),
    )


def fault_resolution_classes(detection: np.ndarray) -> List[List[int]]:
    """Group fault indices with identical detection signatures.

    A pattern set achieves *maximal fault resolution* (Section C) iff every
    class is a singleton among detected faults.  Undetected faults (all-zero
    rows) form their own shared class.
    """
    groups: Dict[bytes, List[int]] = {}
    for index in range(detection.shape[0]):
        key = np.packbits(detection[index].astype(np.uint8)).tobytes()
        groups.setdefault(key, []).append(index)
    return list(groups.values())
