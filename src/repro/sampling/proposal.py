"""Defensive-mixture importance proposals with exact likelihood ratios.

For a (suspect, clock) cell whose critical probabilities are deep in the
tail of the nominal size law ``p``, almost every plain-MC draw is wasted.
The proposal here is the defensive mixture

    ``q = alpha * p + (1 - alpha) * p_shifted``

where ``p_shifted`` is the nominal law with its mean moved to the size a
median chip instance needs to cross the clock boundary.  Keeping ``alpha``
mass on ``p`` bounds every likelihood ratio by ``1/alpha`` (Hesterberg's
defensive mixture), so no single weight can dominate the estimate.

Weights are the exact Radon-Nikodym derivative ``dp/dq`` including the
censoring atom at the floor, so the reweighted estimator is exactly
unbiased: ``E_q[w(X) f(X)] = E_p[f(X)]`` for any bounded ``f``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .config import SamplerConfig
from .distributions import SizeDistribution, standard_normal_cdf

__all__ = ["MixtureProposal", "boundary_proposal"]

#: exp() overflows above ~709; ratios this large give weights that are
#: exactly 0 to double precision anyway, so clipping the exponent only
#: silences the overflow warning without changing any result.
_MAX_EXPONENT = 700.0


@dataclass(frozen=True)
class MixtureProposal:
    """``q = alpha * nominal + (1 - alpha) * shifted`` (both floored).

    ``shift_mean == nominal.mean`` or ``alpha == 1`` degenerates to the
    nominal law itself; that case is special-cased so the likelihood
    ratio is *exactly* 1.0 (floating-point ``alpha + (1 - alpha) * r``
    would not reproduce 1.0 bit-exactly for every ``alpha``).
    """

    nominal: SizeDistribution
    shift_mean: float
    alpha: float

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1], got %r" % (self.alpha,))

    @property
    def is_identity(self) -> bool:
        """True when the proposal is the nominal law (weights all 1)."""
        return self.alpha >= 1.0 or self.shift_mean == self.nominal.mean

    def draw(self, rng, n: int):
        """Draw ``n`` sizes from the mixture plus their exact weights.

        The identity case still consumes the same generator methods
        (uniform component pick + standard normal) so escalating ``alpha``
        to 1 mid-run does not shift unrelated streams.
        """
        n = int(n)
        p = self.nominal
        pick = rng.random(n)
        noise = rng.standard_normal(n)
        if self.is_identity:
            means = p.mean
        else:
            means = np.where(pick < self.alpha, p.mean, self.shift_mean)
        x = means + p.sigma * noise
        if p.floor is not None:
            x = np.maximum(x, p.floor)
        return x, self.weights(x)

    def weights(self, x) -> np.ndarray:
        """Exact ``dp/dq`` at each point of ``x``; bounded by ``1/alpha``."""
        x = np.asarray(x, dtype=float)
        if self.is_identity:
            return np.ones(x.shape)
        p = self.nominal
        sigma2 = 2.0 * p.sigma * p.sigma
        # density ratio shifted/nominal for the continuous part:
        #   phi((x-mus)/s) / phi((x-mu0)/s) = exp(((x-mu0)^2-(x-mus)^2)/2s^2)
        exponent = ((x - p.mean) ** 2 - (x - self.shift_mean) ** 2) / sigma2
        ratio = np.exp(np.minimum(exponent, _MAX_EXPONENT))
        w = 1.0 / (self.alpha + (1.0 - self.alpha) * ratio)
        if p.floor is not None:
            at_floor = x == p.floor
            if at_floor.any():
                nominal_atom = p.atom_mass
                shifted_atom = float(
                    standard_normal_cdf((p.floor - self.shift_mean) / p.sigma)
                )
                mixture_atom = (
                    self.alpha * nominal_atom
                    + (1.0 - self.alpha) * shifted_atom
                )
                w[at_floor] = (
                    nominal_atom / mixture_atom if mixture_atom > 0.0 else 0.0
                )
        return w


def boundary_proposal(
    distribution: SizeDistribution,
    gap: float,
    config: SamplerConfig,
    alpha: Optional[float] = None,
) -> MixtureProposal:
    """The proposal for one (suspect, clock) cell.

    ``gap`` is the defect size a median chip instance needs for the cell's
    hardest entry to cross the clock (clk minus the smallest median base
    settle among tracked entries).  The shifted mean is ``gap`` clamped to
    ``[mean, mean + shift_cap_sigmas * sigma]`` — a gap at or below the
    nominal mean means the boundary is already well covered and no shift
    is applied (the proposal degenerates to the nominal law, weights 1).
    """
    if not config.importance:
        return MixtureProposal(distribution, distribution.mean, 1.0)
    low = distribution.mean
    high = distribution.mean + config.shift_cap_sigmas * distribution.sigma
    target = min(max(float(gap), low), high)
    return MixtureProposal(
        distribution, target, config.alpha if alpha is None else alpha
    )
