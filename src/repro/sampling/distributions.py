"""Defect-size laws with exact tail math (no scipy).

The reproduction's nominal defect-size law is a *floored* normal,
``X = max(floor, N(mean, sigma^2))`` — the same censoring
:meth:`repro.timing.randvars.SampleSpace.normal` applies.  Censoring turns
the density into a mixture of a point mass at the floor
(``Phi((floor - mean) / sigma)``) and the normal density above it; the
importance weights in :mod:`repro.sampling.proposal` and the closed-form
oracles in :mod:`repro.sampling.oracle` both need those pieces exactly,
so they live here, shared.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["SizeDistribution", "standard_normal_cdf"]

_SQRT2 = math.sqrt(2.0)


def standard_normal_cdf(z):
    """Exact ``Phi(z)`` elementwise via ``math.erfc`` (accurate in both
    tails; no scipy dependency).  Scalars in, float out; arrays in,
    array out."""
    if np.isscalar(z) or np.ndim(z) == 0:
        return 0.5 * math.erfc(-float(z) / _SQRT2)
    flat = np.asarray(z, dtype=float).ravel()
    out = np.empty(flat.shape, dtype=float)
    for index, value in enumerate(flat):
        out[index] = 0.5 * math.erfc(-value / _SQRT2)
    return out.reshape(np.shape(z))


@dataclass(frozen=True)
class SizeDistribution:
    """A floored normal defect-size law ``max(floor, N(mean, sigma^2))``.

    ``floor=None`` disables censoring (a plain normal).
    """

    mean: float
    sigma: float
    floor: Optional[float] = 0.0

    def __post_init__(self) -> None:
        if not self.sigma > 0.0:
            raise ValueError("sigma must be positive, got %r" % (self.sigma,))

    @property
    def atom_mass(self) -> float:
        """``P(X == floor)``: the censored probability mass at the floor."""
        if self.floor is None:
            return 0.0
        return float(standard_normal_cdf((self.floor - self.mean) / self.sigma))

    def materialize(self, rng, n: int) -> np.ndarray:
        """Draw ``n`` sizes from the nominal law with the given generator."""
        samples = rng.normal(self.mean, self.sigma, int(n))
        if self.floor is not None:
            np.maximum(samples, self.floor, out=samples)
        return samples

    def survival(self, thresholds):
        """Exact ``P(X > t)`` elementwise.

        Strict inequality: at ``t < floor`` the answer is 1 (all mass,
        atom included, sits at or above the floor); at ``t >= floor`` the
        atom never counts and the normal tail is exact.
        """
        t = np.asarray(thresholds, dtype=float)
        tail = 1.0 - standard_normal_cdf((t - self.mean) / self.sigma)
        if self.floor is not None:
            tail = np.where(t < self.floor, 1.0, tail)
        if np.ndim(thresholds) == 0:
            return float(tail)
        return tail

    def cache_token(self) -> str:
        return "floored-normal:%r:%r:%r" % (self.mean, self.sigma, self.floor)
