"""Closed-form oracles the statistical test harness compares against.

The sampled dictionary's estimand is *conditional on the materialized
chip-instance population*: the ``n_samples`` per-instance settle times are
fixed (they are the common-random-numbers axis every estimator shares),
and only the defect size is re-randomized.  For an entry whose settle
time shifts additively with the defect size (single dominant path through
the suspect edge — e.g. a buffer chain), the exact value is

    ``p = mean_s  P(settle_s + X > clk) = mean_s  S_X(clk - settle_s)``

with ``S_X`` the floored-normal survival function — a finite average of
``Phi`` terms, computable to machine precision.  The estimator tests
check plain-MC, IS and adaptive estimates against these values within
their reported confidence intervals.
"""

from __future__ import annotations

import numpy as np

from .distributions import SizeDistribution

__all__ = ["conditional_exceedance", "exact_tail_probability"]


def exact_tail_probability(
    distribution: SizeDistribution, thresholds
) -> np.ndarray:
    """Exact ``P(X > t)`` elementwise — the oracle for
    :func:`repro.sampling.allocator.estimate_tail_probabilities`."""
    return distribution.survival(thresholds)


def conditional_exceedance(
    distribution: SizeDistribution, settle_rows, clk: float
) -> np.ndarray:
    """Exact ``mean_s P(settle_s + X > clk)`` along the last axis.

    ``settle_rows`` is ``(..., n_samples)`` of per-instance settle times
    for entries whose response to the defect is additive; the result
    drops the sample axis.
    """
    settles = np.asarray(settle_rows, dtype=float)
    return distribution.survival(float(clk) - settles).mean(axis=-1)
