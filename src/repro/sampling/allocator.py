"""Adaptive per-(suspect, clock) sample allocation in fixed-size rounds.

One :class:`CellAllocator` owns the sampling state for a single
(suspect, clock) cell group — every dictionary entry that suspect can
touch at that clock.  Rounds are fixed at the sample-space width (one
defect size per materialized chip instance, so a round is exactly one
cone re-simulation per active pattern), and the estimator is fed through
:class:`repro.obs.convergence.ConvergenceStat`:

* each tracked entry's stat receives ``w * indicator`` under *unit*
  weights — its running ``mean`` is then the unnormalized (exactly
  unbiased) importance-sampling estimate and ``std_error`` its CI,
* a separate weight meter receives ``update(values=w, weights=w)`` —
  its ``ess`` is the effective sample size behind the degeneracy guard.

The guard is outcome-dependent but *target-independent*: when the ESS
fraction drops below ``ess_floor``, ``alpha`` doubles (mixing back toward
the nominal law) regardless of the CI target.  Together with per-round
spawn-key RNG this makes the draw sequence a pure function of
``(seed, suspect, clk, round)`` — so tightening the CI target can only
extend the round sequence, never change it (allocation is monotone), and
serial/thread/process backends replay identical streams.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

import numpy as np

from ..obs.convergence import ConvergenceStat
from ..rng import spawn_generator
from .config import SAMPLER_SPAWN_KEY, SamplerConfig
from .distributions import SizeDistribution
from .proposal import MixtureProposal, boundary_proposal

__all__ = [
    "AllocationReport",
    "CellAllocator",
    "estimate_tail_probabilities",
]


@dataclass(frozen=True)
class AllocationReport:
    """What one cell's allocation spent and how healthy it was."""

    rounds: int
    samples_spent: int
    ess_fraction: float
    degenerate_rounds: int
    alpha_final: float
    converged: bool


class CellAllocator:
    """Round-based importance-sampling estimator for one cell group."""

    def __init__(
        self,
        config: SamplerConfig,
        distribution: SizeDistribution,
        gap: float,
        *,
        seed: int,
        suspect_index: int,
        clk_index: int,
        n_entries: int,
        round_size: int,
    ) -> None:
        self.config = config
        self.distribution = distribution
        self.seed = int(seed)
        self.suspect_index = int(suspect_index)
        self.clk_index = int(clk_index)
        self.round_size = int(round_size)
        self.alpha = 1.0 if not config.importance else config.alpha
        self.proposal: MixtureProposal = boundary_proposal(
            distribution, gap, config, alpha=self.alpha
        )
        self.entry_stats: List[ConvergenceStat] = [
            ConvergenceStat() for _ in range(int(n_entries))
        ]
        self.weight_stat = ConvergenceStat()
        self.max_weight = 0.0
        self.rounds = 0
        self.degenerate_rounds = 0

    # -- the round protocol ---------------------------------------------

    def draw(self, round_index: int):
        """Sizes + exact weights for one round.

        A pure function of ``(seed, suspect, clk, round)`` and the current
        proposal — never of chunking or backend, so parallel builds replay
        the serial streams bit-for-bit.
        """
        rng = spawn_generator(
            self.seed,
            SAMPLER_SPAWN_KEY,
            self.suspect_index,
            self.clk_index,
            int(round_index),
        )
        return self.proposal.draw(rng, self.round_size)

    def commit(self, weights: np.ndarray, indicators: np.ndarray) -> None:
        """Fold one round in; ``indicators`` is ``(n_entries, round_size)``."""
        weights = np.asarray(weights, dtype=float)
        for stat, row in zip(self.entry_stats, np.asarray(indicators)):
            stat.update(np.asarray(row, dtype=float) * weights)
        self.weight_stat.update(weights, weights=weights)
        if weights.size:
            self.max_weight = max(self.max_weight, float(weights.max()))
        self.rounds += 1
        if self.ess_fraction < self.config.ess_floor:
            self.degenerate_rounds += 1
            if self.config.importance and self.alpha < 1.0:
                self.alpha = min(1.0, 2.0 * self.alpha)
                self.proposal = replace(self.proposal, alpha=self.alpha)

    def converged(self) -> bool:
        """Every tracked entry's CI half-width is inside the target.

        An all-zero entry has zero *empirical* variance, yet under an
        identity proposal (plain MC) its true probability can still be as
        large as ~3/n — the rule of three.  Without a guard plain MC
        would declare deep-tail entries converged at 0 after
        ``min_rounds``; with it, proving an entry is below ``ci_abs``
        costs plain MC ~``3/ci_abs`` draws.  Shifted proposals get no
        floor: they oversample the event region by construction, so an
        all-zero entry after n boundary-shifted rounds carries residual
        mass of at most ~``w(boundary) * 3/n``, far inside any practical
        target (the boundary weights are the tiny ones).
        """
        config = self.config
        rule_of_three = (
            3.0 * self.max_weight if self.proposal.is_identity else 0.0
        )
        for stat in self.entry_stats:
            if stat.count < 2:
                return False
            half_width = config.z * stat.std_error
            if stat.mean == 0.0:
                half_width = max(half_width, rule_of_three / stat.count)
            if half_width > config.ci_abs + config.ci_rel * abs(stat.mean):
                return False
        return True

    def should_stop(self) -> bool:
        """The adaptive stopping rule (fixed-round modes bypass this)."""
        config = self.config
        if self.rounds < config.min_rounds:
            return False
        if self.rounds >= config.max_rounds:
            return True
        return self.converged()

    # -- results ---------------------------------------------------------

    @property
    def samples_spent(self) -> int:
        return self.rounds * self.round_size

    @property
    def ess_fraction(self) -> float:
        count = self.weight_stat.count
        return float(self.weight_stat.ess / count) if count else 1.0

    def estimates(self, clip: bool = True) -> np.ndarray:
        """Per-entry critical-probability estimates.

        The raw unnormalized estimate is unbiased but can stray outside
        [0, 1] on finite samples; dictionary assembly clips, unbiasedness
        tests read the raw values.
        """
        values = np.array([stat.mean for stat in self.entry_stats])
        if clip:
            np.clip(values, 0.0, 1.0, out=values)
        return values

    def half_widths(self) -> np.ndarray:
        return np.array(
            [self.config.z * stat.std_error for stat in self.entry_stats]
        )

    def report(self) -> AllocationReport:
        return AllocationReport(
            rounds=self.rounds,
            samples_spent=self.samples_spent,
            ess_fraction=self.ess_fraction,
            degenerate_rounds=self.degenerate_rounds,
            alpha_final=self.alpha,
            converged=self.converged(),
        )


def estimate_tail_probabilities(
    config: SamplerConfig,
    distribution: SizeDistribution,
    thresholds,
    *,
    seed: int,
    round_size: int,
    suspect_index: int = 0,
    clk_index: int = 0,
):
    """Estimate ``P(X > t)`` per threshold with the full round protocol.

    The dictionary worker's loop minus the circuit: indicators are
    ``x > t``.  This is what the statistical test harness (and the
    benchmark's calibration) runs against the closed-form oracle
    :func:`repro.sampling.oracle.exact_tail_probability`.  Returns
    ``(estimates, allocator)`` so callers can also inspect raw estimates,
    half-widths and the allocation report.
    """
    thresholds = np.asarray(thresholds, dtype=float)
    gap = float(thresholds.max()) if thresholds.size else distribution.mean
    allocator = CellAllocator(
        config,
        distribution,
        gap,
        seed=seed,
        suspect_index=suspect_index,
        clk_index=clk_index,
        n_entries=thresholds.size,
        round_size=round_size,
    )
    fixed_rounds = config.is_rounds if config.mode == "is" else None
    while True:
        x, w = allocator.draw(allocator.rounds)
        allocator.commit(w, x[None, :] > thresholds[:, None])
        if fixed_rounds is not None:
            if allocator.rounds >= fixed_rounds:
                break
        elif allocator.should_stop():
            break
    return allocator.estimates(), allocator
