"""Variance reduction for dictionary construction (ROADMAP: ISLE-style IS).

Importance sampling shifts the defect-size proposal toward the clock
boundary per (suspect, clock) cell with exact likelihood-ratio
reweighting; adaptive allocation draws in fixed-size rounds and stops
each cell as soon as every tracked critical probability's confidence
half-width meets the target.  A defensive mixture bounds all weights by
``1/alpha`` and an ESS guard mixes back toward the nominal law when
weights degenerate.

Entry points: :func:`resolve_sampler` (mode string / env / config ->
:class:`SamplerConfig`), :class:`SizeDistribution` (the nominal law the
likelihood ratios are exact against), :class:`CellAllocator` (the round
protocol used by :func:`repro.core.dictionary.build_multi_clock_dictionary`
when ``sampler`` is not plain), and the closed-form oracles in
:mod:`repro.sampling.oracle` backing the statistical test harness.
"""

from .allocator import (
    AllocationReport,
    CellAllocator,
    estimate_tail_probabilities,
)
from .config import (
    ENV_SAMPLER,
    SAMPLER_MODES,
    SAMPLER_SPAWN_KEY,
    SamplerConfig,
    resolve_sampler,
)
from .distributions import SizeDistribution, standard_normal_cdf
from .oracle import conditional_exceedance, exact_tail_probability
from .proposal import MixtureProposal, boundary_proposal

__all__ = [
    "AllocationReport",
    "CellAllocator",
    "ENV_SAMPLER",
    "MixtureProposal",
    "SAMPLER_MODES",
    "SAMPLER_SPAWN_KEY",
    "SamplerConfig",
    "SizeDistribution",
    "boundary_proposal",
    "conditional_exceedance",
    "estimate_tail_probabilities",
    "exact_tail_probability",
    "resolve_sampler",
    "standard_normal_cdf",
]
