"""Sampler configuration: modes, knobs, environment resolution, cache tokens.

Three modes select how dictionary critical probabilities are estimated:

* ``plain`` — the legacy common-random-numbers path, byte-identical to a
  build without any sampler (same code path, same cache key),
* ``is`` — importance sampling with a fixed number of rounds: every
  (suspect, clock) cell draws defect sizes from a defensive mixture
  shifted toward the clock boundary and reweights with exact likelihood
  ratios (:mod:`repro.sampling.proposal`),
* ``adaptive`` — importance sampling plus per-cell sample allocation:
  rounds continue until every tracked critical probability's confidence
  half-width falls below ``ci_abs + ci_rel * estimate``
  (:mod:`repro.sampling.allocator`).

Every sampled draw goes through
``spawn_generator(seed, SAMPLER_SPAWN_KEY, suspect, clk, round)`` so the
streams are a pure function of the sample-space seed and stable indices —
bit-identical across serial/thread/process backends and independent of
chunking (see :mod:`repro.rng`).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Optional, Union

__all__ = [
    "ENV_SAMPLER",
    "SAMPLER_MODES",
    "SAMPLER_SPAWN_KEY",
    "SamplerConfig",
    "resolve_sampler",
]

#: CLI / environment spelling of the three public modes.
SAMPLER_MODES = ("plain", "is", "adaptive")

#: Environment variable consulted when no explicit sampler is passed.
ENV_SAMPLER = "REPRO_SAMPLER"

#: Spawn-key namespace for sampler RNG streams.  Keeps them disjoint from
#: the base delay matrix (no spawn key) and every other subsystem's
#: ``child_rng`` streams.
SAMPLER_SPAWN_KEY = 777


@dataclass(frozen=True)
class SamplerConfig:
    """Knobs for the importance-sampling / adaptive-allocation estimator.

    ``alpha`` is the defensive-mixture mass kept on the nominal size law:
    likelihood ratios are bounded by ``1/alpha`` no matter how far the
    proposal shifts.  ``shift_cap_sigmas`` caps the proposal mean at
    ``nominal.mean + cap * sigma``.  The adaptive stopping target is
    ``z * std_error <= ci_abs + ci_rel * |estimate|`` for *every* tracked
    entry, checked after each round; the relative term is what makes rare
    (deep-tail) probabilities expensive for plain Monte Carlo and cheap
    for the shifted proposal.  ``ess_floor`` is the minimum acceptable
    effective-sample-size fraction before the degeneracy guard doubles
    ``alpha`` (mixing back toward the nominal law).

    ``importance=False`` keeps the round/allocation machinery but pins the
    proposal to the nominal law (all weights exactly 1) — the plain-MC
    baseline the benchmark uses to measure sample counts at equal
    accuracy.
    """

    mode: str = "plain"
    alpha: float = 0.1
    shift_cap_sigmas: float = 12.0
    ci_abs: float = 0.01
    ci_rel: float = 0.1
    z: float = 1.96
    min_rounds: int = 2
    max_rounds: int = 64
    is_rounds: int = 4
    ess_floor: float = 0.2
    importance: bool = True

    def __post_init__(self) -> None:
        if self.mode not in SAMPLER_MODES:
            raise ValueError(
                "unknown sampler mode %r (expected one of %s)"
                % (self.mode, ", ".join(SAMPLER_MODES))
            )
        if not 0.0 < self.alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1], got %r" % (self.alpha,))
        if not 0.0 < self.ess_floor <= 1.0:
            raise ValueError(
                "ess_floor must be in (0, 1], got %r" % (self.ess_floor,)
            )
        if self.min_rounds < 1 or self.max_rounds < self.min_rounds:
            raise ValueError("need 1 <= min_rounds <= max_rounds")
        if self.is_rounds < 1:
            raise ValueError("is_rounds must be positive")
        if self.ci_abs < 0.0 or self.ci_rel < 0.0 or self.z <= 0.0:
            raise ValueError("CI target parameters must be non-negative")

    @property
    def is_plain(self) -> bool:
        return self.mode == "plain"

    def cache_token(self, distribution) -> str:
        """A stable string folded into the dictionary cache key.

        Only non-plain builds append this token, so every plain cache key
        stays byte-identical to keys written before the sampler existed.
        """
        payload = {
            "sampling": 1,
            "mode": self.mode,
            "alpha": self.alpha,
            "shift_cap_sigmas": self.shift_cap_sigmas,
            "ci_abs": self.ci_abs,
            "ci_rel": self.ci_rel,
            "z": self.z,
            "min_rounds": self.min_rounds,
            "max_rounds": self.max_rounds,
            "is_rounds": self.is_rounds,
            "ess_floor": self.ess_floor,
            "importance": self.importance,
            "distribution": distribution.cache_token(),
        }
        return json.dumps(payload, sort_keys=True)


def resolve_sampler(
    sampler: Optional[Union[SamplerConfig, str]] = None,
) -> SamplerConfig:
    """Normalize a sampler argument, falling back to ``REPRO_SAMPLER``.

    Accepts a ready :class:`SamplerConfig`, a mode name, or ``None``
    (consult the environment, default ``plain``).
    """
    if isinstance(sampler, SamplerConfig):
        return sampler
    if sampler is None:
        sampler = os.environ.get(ENV_SAMPLER, "").strip() or "plain"
    if isinstance(sampler, str):
        return SamplerConfig(mode=sampler.strip().lower())
    raise TypeError("sampler must be a SamplerConfig, mode string or None")
