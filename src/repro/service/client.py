"""Thin synchronous JSON-lines client for the diagnosis server.

The wire format is the one-object-per-line protocol documented in
:mod:`repro.service.server`.  Error responses are rehydrated into the
same typed :mod:`repro.service.errors` exceptions the server raised, so
calling code (and the ``repro query`` CLI exit-code mapping) dispatches
on types on both sides of the socket.
"""

from __future__ import annotations

import json
import socket
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..resilience.policy import RetryPolicy
from .errors import QueueFullError, ServiceConnectionError, error_from_wire

__all__ = ["ServiceClient", "RemoteDiagnosis"]


class RemoteDiagnosis:
    """A deserialized diagnose answer: ``ranking`` is best-first
    ``(edge_string, score)`` pairs (edges travel as their ``str`` form);
    ``version`` is the dictionary generation that scored the query."""

    def __init__(self, workload: str, method: str,
                 ranking: Sequence[Tuple[str, float]],
                 version: int = 0) -> None:
        self.workload = workload
        self.method = method
        self.version = int(version)
        self.ranking: List[Tuple[str, float]] = [
            (str(edge), float(score)) for edge, score in ranking
        ]

    def top(self, k: int = 1) -> List[str]:
        if k < 1:
            raise ValueError("K must be at least 1")
        return [edge for edge, _score in self.ranking[:k]]

    def __repr__(self) -> str:
        return (f"RemoteDiagnosis({self.workload!r}, {self.method!r}, "
                f"{len(self.ranking)} suspects)")


class ServiceClient:
    """One TCP connection speaking the JSON-lines protocol.

    Usable as a context manager::

        with ServiceClient("127.0.0.1", 8787) as client:
            answer = client.diagnose("s1196", behavior, top_k=5)

    ``retries`` opts into transparent reconnect-and-retry for the two
    wire errors a client can always safely re-issue against —
    ``connection`` (the request may never have reached a dispatcher) and
    ``overloaded`` (the server explicitly asked for a retry).  Off by
    default: pass an ``int`` (shorthand for that many re-attempts) or a
    full :class:`~repro.resilience.RetryPolicy` for custom backoff.
    Waits are bounded and deterministic (the policy's hash-derived
    jitter), keyed on the client-side call sequence number.  ``timeout``
    and other typed errors are never retried — the request may have
    executed.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 timeout: Optional[float] = 60.0,
                 retries: Optional[Union[int, RetryPolicy]] = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        if retries is None or isinstance(retries, RetryPolicy):
            self._retry = retries
        elif isinstance(retries, int) and not isinstance(retries, bool):
            self._retry = RetryPolicy(max_retries=retries)
        else:
            raise TypeError("retries must be None, an int, or a RetryPolicy")
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._next_id = 0
        self._calls = 0
        self._connect()

    # -- transport ------------------------------------------------------

    def _connect(self) -> None:
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            self._sock = None
            self._reader = None
            raise ServiceConnectionError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from None
        self._reader = self._sock.makefile("rb")

    def _reconnect(self) -> None:
        self.close()
        self._connect()

    def close(self) -> None:
        try:
            if self._reader is not None:
                self._reader.close()
        finally:
            if self._sock is not None:
                self._sock.close()
        self._reader = None
        self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def call(self, message: dict):
        """One request/response round trip; raises typed errors.

        With ``retries`` enabled, ``connection`` failures reconnect and
        resend, ``overloaded`` rejections back off and resend — both
        bounded by the policy's ``max_retries``; everything else
        propagates immediately.
        """
        self._calls += 1
        if self._retry is None:
            return self._call_once(message)
        chunk = self._calls  # deterministic-jitter key for this call
        attempt = 0
        while True:
            try:
                return self._call_once(message)
            except (ServiceConnectionError, QueueFullError) as error:
                if attempt >= self._retry.max_retries:
                    raise
                attempt += 1
                self._retry.wait(chunk, attempt)
                if isinstance(error, ServiceConnectionError):
                    try:
                        self._reconnect()
                    except ServiceConnectionError:
                        # Still down: burn the next attempt's fast
                        # failure in _call_once rather than giving up.
                        continue

    def _call_once(self, message: dict):
        if self._sock is None:
            raise ServiceConnectionError("not connected")
        self._next_id += 1
        message = dict(message, id=self._next_id)
        try:
            self._sock.sendall(json.dumps(message).encode() + b"\n")
            line = self._reader.readline()
        except OSError as exc:
            raise ServiceConnectionError(f"transport failure: {exc}") from None
        if not line:
            raise ServiceConnectionError("server closed the connection")
        try:
            response = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServiceConnectionError(f"bad response line: {exc}") from None
        if not response.get("ok"):
            error = response.get("error") or {}
            raise error_from_wire(
                error.get("type", "internal"),
                error.get("message", "unspecified server error"),
            )
        return response.get("result")

    # -- operations -----------------------------------------------------

    def ping(self) -> bool:
        return self.call({"op": "ping"}) == "pong"

    def stats(self) -> dict:
        return self.call({"op": "stats"})

    def workloads(self) -> List[str]:
        return list(self.call({"op": "workloads"}))

    def health(self) -> dict:
        """Lifecycle state, breaker snapshot, plane, queue depth."""
        return self.call({"op": "health"})

    def ready(self) -> dict:
        """Readiness verdict: ``{"ready": bool, "state": str}``."""
        return self.call({"op": "ready"})

    def reload(self, workload: str) -> dict:
        """Hot-swap a workload's dictionary from its rewritten store
        entry; returns ``{"workload": ..., "version": ...}`` or raises a
        typed ``reload_failed`` error."""
        return self.call({"op": "reload", "workload": workload})

    def diagnose(
        self,
        workload: str,
        behavior,
        error_function: str = "alg_rev",
        top_k: Optional[int] = None,
    ) -> RemoteDiagnosis:
        message = {
            "op": "diagnose",
            "workload": workload,
            "behavior": np.asarray(behavior).tolist(),
            "error_function": error_function,
        }
        if top_k is not None:
            message["top_k"] = top_k
        result = self.call(message)
        return RemoteDiagnosis(
            result["workload"], result["method"], result["ranking"],
            version=result.get("version", 0),
        )

    def diagnose_many(
        self,
        workload: str,
        behaviors: Iterable,
        error_function: str = "alg_rev",
        top_k: Optional[int] = None,
    ) -> List[RemoteDiagnosis]:
        """Sequential convenience loop (one connection, many queries)."""
        return [
            self.diagnose(workload, behavior, error_function, top_k)
            for behavior in behaviors
        ]
