"""Thin synchronous JSON-lines client for the diagnosis server.

The wire format is the one-object-per-line protocol documented in
:mod:`repro.service.server`.  Error responses are rehydrated into the
same typed :mod:`repro.service.errors` exceptions the server raised, so
calling code (and the ``repro query`` CLI exit-code mapping) dispatches
on types on both sides of the socket.
"""

from __future__ import annotations

import json
import socket
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .errors import ServiceConnectionError, error_from_wire

__all__ = ["ServiceClient", "RemoteDiagnosis"]


class RemoteDiagnosis:
    """A deserialized diagnose answer: ``ranking`` is best-first
    ``(edge_string, score)`` pairs (edges travel as their ``str`` form)."""

    def __init__(self, workload: str, method: str,
                 ranking: Sequence[Tuple[str, float]]) -> None:
        self.workload = workload
        self.method = method
        self.ranking: List[Tuple[str, float]] = [
            (str(edge), float(score)) for edge, score in ranking
        ]

    def top(self, k: int = 1) -> List[str]:
        if k < 1:
            raise ValueError("K must be at least 1")
        return [edge for edge, _score in self.ranking[:k]]

    def __repr__(self) -> str:
        return (f"RemoteDiagnosis({self.workload!r}, {self.method!r}, "
                f"{len(self.ranking)} suspects)")


class ServiceClient:
    """One TCP connection speaking the JSON-lines protocol.

    Usable as a context manager::

        with ServiceClient("127.0.0.1", 8787) as client:
            answer = client.diagnose("s1196", behavior, top_k=5)
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 timeout: Optional[float] = 60.0) -> None:
        self.host = host
        self.port = port
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ServiceConnectionError(
                f"cannot connect to {host}:{port}: {exc}"
            ) from None
        self._reader = self._sock.makefile("rb")
        self._next_id = 0

    # -- transport ------------------------------------------------------

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def call(self, message: dict):
        """One request/response round trip; raises typed errors."""
        self._next_id += 1
        message = dict(message, id=self._next_id)
        try:
            self._sock.sendall(json.dumps(message).encode() + b"\n")
            line = self._reader.readline()
        except OSError as exc:
            raise ServiceConnectionError(f"transport failure: {exc}") from None
        if not line:
            raise ServiceConnectionError("server closed the connection")
        try:
            response = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ServiceConnectionError(f"bad response line: {exc}") from None
        if not response.get("ok"):
            error = response.get("error") or {}
            raise error_from_wire(
                error.get("type", "internal"),
                error.get("message", "unspecified server error"),
            )
        return response.get("result")

    # -- operations -----------------------------------------------------

    def ping(self) -> bool:
        return self.call({"op": "ping"}) == "pong"

    def stats(self) -> dict:
        return self.call({"op": "stats"})

    def workloads(self) -> List[str]:
        return list(self.call({"op": "workloads"}))

    def diagnose(
        self,
        workload: str,
        behavior,
        error_function: str = "alg_rev",
        top_k: Optional[int] = None,
    ) -> RemoteDiagnosis:
        message = {
            "op": "diagnose",
            "workload": workload,
            "behavior": np.asarray(behavior).tolist(),
            "error_function": error_function,
        }
        if top_k is not None:
            message["top_k"] = top_k
        result = self.call(message)
        return RemoteDiagnosis(
            result["workload"], result["method"], result["ranking"]
        )

    def diagnose_many(
        self,
        workload: str,
        behaviors: Iterable,
        error_function: str = "alg_rev",
        top_k: Optional[int] = None,
    ) -> List[RemoteDiagnosis]:
        """Sequential convenience loop (one connection, many queries)."""
        return [
            self.diagnose(workload, behavior, error_function, top_k)
            for behavior in behaviors
        ]
