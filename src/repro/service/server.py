"""The asyncio JSON-lines front end of :class:`DiagnosisService`.

Protocol — one JSON object per line, both directions:

request::

    {"op": "diagnose", "id": 7, "workload": "s1196",
     "behavior": [[0,1,...], ...], "error_function": "alg_rev", "top_k": 5}
    {"op": "ping"}        {"op": "stats"}        {"op": "workloads"}

response::

    {"id": 7, "ok": true, "result": {"workload": "s1196",
     "method": "alg_rev", "ranking": [["a->b[0]", 0.25], ...]}}
    {"id": 7, "ok": false, "error": {"type": "overloaded", "message": "..."}}

``error.type`` tags are the stable wire taxonomy of
:mod:`repro.service.errors`.  Backpressure contract (documented in
``docs/architecture.md`` §15): diagnose requests land in a bounded
queue; when it is full the server answers ``overloaded`` *immediately*
instead of buffering — a saturated service degrades into fast typed
rejections, never unbounded memory.  A dispatcher task drains the queue
and micro-batches up to ``max_batch`` pending requests into one
:meth:`DiagnosisService.diagnose_batch` call, so concurrent clients get
the vectorized kernel for free; batching never changes answers (the
engine's bit-identity contract), so rankings are stable however client
streams interleave.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .. import obs
from ..core.error_functions import by_name
from .engine import DiagnosisRequest, DiagnosisService
from .errors import (
    BadRequestError,
    RequestTimeoutError,
    ServiceError,
    wire_type,
)

__all__ = ["ServerConfig", "DiagnosisServer"]


@dataclass(frozen=True)
class ServerConfig:
    """Operational knobs of one server instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral (tests); the bound port is exposed
    queue_limit: int = 64  # backpressure bound on queued diagnose requests
    max_batch: int = 16  # micro-batch cap per dispatcher drain
    request_timeout: float = 30.0  # seconds from enqueue to answer


@dataclass
class _Pending:
    request: DiagnosisRequest
    future: "asyncio.Future" = field(repr=False)
    enqueued_at: float = 0.0
    deadline: float = 0.0


class DiagnosisServer:
    """Bounded-queue asyncio server around a warm :class:`DiagnosisService`."""

    def __init__(
        self, service: DiagnosisService, config: ServerConfig = ServerConfig()
    ) -> None:
        self.service = service
        self.config = config
        self._server: Optional[asyncio.AbstractServer] = None
        self._queue: Optional[asyncio.Queue] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._connections: set = set()

    # -- lifecycle ------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        if self._server is None:
            raise RuntimeError("server is not running")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._queue = asyncio.Queue(maxsize=self.config.queue_limit)
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Cancel live connection handlers so no coroutine outlives the
        # event loop (a GC'd suspended handler raises at interpreter
        # teardown otherwise).
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )
        self._connections.clear()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- dispatcher -----------------------------------------------------

    async def _dispatch_loop(self) -> None:
        """Drain the queue, micro-batching adjacent pending requests."""
        assert self._queue is not None
        recorder = obs.get_recorder()
        while True:
            batch: List[_Pending] = [await self._queue.get()]
            while (
                len(batch) < self.config.max_batch
                and not self._queue.empty()
            ):
                batch.append(self._queue.get_nowait())
            now = time.monotonic()
            live: List[_Pending] = []
            for pending in batch:
                if pending.future.cancelled():
                    continue
                if now > pending.deadline:
                    pending.future.set_exception(RequestTimeoutError(
                        "request spent longer than "
                        f"{self.config.request_timeout:g}s queued"
                    ))
                    recorder.count("service.timeouts")
                    continue
                live.append(pending)
            if not live:
                continue
            try:
                with recorder.span("service.dispatch"):
                    answers = self.service.diagnose_batch(
                        [pending.request for pending in live]
                    )
            except Exception as error:  # typed errors fail the whole batch
                for pending in live:
                    if not pending.future.done():
                        pending.future.set_exception(error)
                continue
            for pending, answer in zip(live, answers):
                if not pending.future.done():
                    pending.future.set_result(answer)

    # -- connection handling --------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        recorder = obs.get_recorder()
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._handle_line(line, recorder)
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_line(self, line: bytes, recorder) -> dict:
        request_id = None
        try:
            try:
                message = json.loads(line)
            except json.JSONDecodeError as exc:
                raise BadRequestError(f"bad JSON: {exc}") from None
            if not isinstance(message, dict):
                raise BadRequestError("request must be a JSON object")
            request_id = message.get("id")
            op = message.get("op")
            if op == "ping":
                return {"id": request_id, "ok": True, "result": "pong"}
            if op == "stats":
                return {
                    "id": request_id, "ok": True,
                    "result": self.service.stats(),
                }
            if op == "workloads":
                return {
                    "id": request_id, "ok": True,
                    "result": self.service.workload_names(),
                }
            if op != "diagnose":
                raise BadRequestError(f"unknown op {op!r}")
            return await self._handle_diagnose(message, request_id, recorder)
        except ServiceError as error:
            return self._error_response(request_id, error, recorder)
        except Exception as error:  # internal: never kill the connection
            return self._error_response(request_id, error, recorder)

    async def _handle_diagnose(
        self, message: dict, request_id, recorder
    ) -> dict:
        assert self._queue is not None
        with recorder.span("service.request"):
            request = self._parse_diagnose(message)
            loop = asyncio.get_event_loop()
            now = time.monotonic()
            pending = _Pending(
                request=request,
                future=loop.create_future(),
                enqueued_at=now,
                deadline=now + self.config.request_timeout,
            )
            try:
                self._queue.put_nowait(pending)
            except asyncio.QueueFull:
                recorder.count("service.overloaded")
                return {
                    "id": request_id, "ok": False,
                    "error": {
                        "type": "overloaded",
                        "message": (
                            "request queue is full "
                            f"({self.config.queue_limit} pending); retry"
                        ),
                    },
                }
            try:
                answer = await asyncio.wait_for(
                    pending.future, timeout=self.config.request_timeout
                )
            except asyncio.TimeoutError:
                recorder.count("service.timeouts")
                return self._error_response(
                    request_id,
                    RequestTimeoutError(
                        "no answer within "
                        f"{self.config.request_timeout:g}s"
                    ),
                    recorder,
                )
            top_k = message.get("top_k")
            ranking = answer.ranking if top_k is None else answer.ranking[:top_k]
            return {
                "id": request_id, "ok": True,
                "result": {
                    "workload": answer.workload,
                    "method": answer.method,
                    "ranking": [
                        [str(edge), score] for edge, score in ranking
                    ],
                },
            }

    def _parse_diagnose(self, message: dict) -> DiagnosisRequest:
        workload = message.get("workload")
        if not isinstance(workload, str):
            raise BadRequestError("diagnose needs a string 'workload'")
        behavior = message.get("behavior")
        if behavior is None:
            raise BadRequestError("diagnose needs a 'behavior' matrix")
        try:
            matrix = np.asarray(behavior, dtype=float)
        except (TypeError, ValueError) as exc:
            raise BadRequestError(f"bad behavior matrix: {exc}") from None
        if matrix.ndim != 2:
            raise BadRequestError(
                f"behavior must be 2-D, got shape {matrix.shape}"
            )
        top_k = message.get("top_k")
        if top_k is not None and (not isinstance(top_k, int) or top_k < 1):
            raise BadRequestError("top_k must be a positive integer")
        error_function = message.get("error_function", "alg_rev")
        if not isinstance(error_function, str):
            raise BadRequestError("error_function must be a string name")
        try:
            by_name(error_function)
        except KeyError as exc:
            raise BadRequestError(str(exc)) from None
        # Reject unknown workloads and shape mismatches *before* the
        # queue: a bad request must fail alone, never poison the
        # micro-batch it would have been grouped into.
        expected = self.service.workload(workload).behavior_shape
        if matrix.shape != tuple(expected):
            raise BadRequestError(
                f"behavior shape {matrix.shape} != workload {workload!r} "
                f"shape {tuple(expected)}"
            )
        return DiagnosisRequest(
            workload=workload,
            behavior=matrix,
            error_function=error_function,
        )

    def _error_response(self, request_id, error, recorder) -> dict:
        tag = wire_type(error)
        recorder.count(f"service.errors.{tag}")
        return {
            "id": request_id, "ok": False,
            "error": {"type": tag, "message": str(error)},
        }
