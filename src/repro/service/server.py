"""The asyncio JSON-lines front end of :class:`DiagnosisService`.

Protocol — one JSON object per line, both directions:

request::

    {"op": "diagnose", "id": 7, "workload": "s1196",
     "behavior": [[0,1,...], ...], "error_function": "alg_rev", "top_k": 5}
    {"op": "ping"}        {"op": "stats"}        {"op": "workloads"}
    {"op": "health"}      {"op": "ready"}
    {"op": "reload", "workload": "s1196"}

response::

    {"id": 7, "ok": true, "result": {"workload": "s1196",
     "method": "alg_rev", "version": 0,
     "ranking": [["a->b[0]", 0.25], ...]}}
    {"id": 7, "ok": false, "error": {"type": "overloaded", "message": "..."}}

``error.type`` tags are the stable wire taxonomy of
:mod:`repro.service.errors`.  Backpressure contract (documented in
``docs/architecture.md`` §15): diagnose requests land in a bounded
queue; when it is full the server answers ``overloaded`` *immediately*
instead of buffering — a saturated service degrades into fast typed
rejections, never unbounded memory.  A dispatcher task drains the queue
and micro-batches up to ``max_batch`` pending requests through the
:class:`~repro.service.supervision.ServiceSupervisor`, which scores each
``(workload, error_function)`` group in one vectorized engine call with
per-group fault isolation; batching never changes answers (the engine's
bit-identity contract), so rankings are stable however client streams
interleave.

Operational behavior (``docs/architecture.md`` §16): the supervisor's
circuit breaker sheds load with ``overloaded`` before the queue is
touched; per-connection write deadlines (``write_timeout``) disconnect
stalled readers so one slow client cannot wedge the dispatcher's answer
path; :meth:`DiagnosisServer.drain` stops accepting, flushes every
in-flight batch, answers every pending request, and stops — the SIGTERM
contract of ``repro serve``.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .. import obs
from ..core.error_functions import by_name
from ..resilience import chaos
from ..resilience.errors import ChaosError
from .engine import DiagnosisRequest, DiagnosisService
from .errors import (
    BadRequestError,
    RequestTimeoutError,
    ServiceDrainingError,
    ServiceError,
    wire_type,
)
from .supervision import ServiceSupervisor

__all__ = ["ServerConfig", "DiagnosisServer"]


@dataclass(frozen=True)
class ServerConfig:
    """Operational knobs of one server instance."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral (tests); the bound port is exposed
    queue_limit: int = 64  # backpressure bound on queued diagnose requests
    max_batch: int = 16  # micro-batch cap per dispatcher drain
    request_timeout: float = 30.0  # seconds from enqueue to answer
    write_timeout: float = 10.0  # per-response write deadline (slow clients)
    drain_grace: float = 10.0  # seconds a graceful drain may flush for


class _SlowClientError(Exception):
    """Internal: a response write missed ``write_timeout``; drop the peer."""


@dataclass
class _Pending:
    request: DiagnosisRequest
    future: "asyncio.Future" = field(repr=False)
    enqueued_at: float = 0.0
    deadline: float = 0.0


class DiagnosisServer:
    """Bounded-queue asyncio server around a warm :class:`DiagnosisService`.

    ``supervisor`` defaults to a fresh
    :class:`~repro.service.supervision.ServiceSupervisor` over
    ``service``; pass one explicitly to share breaker/lifecycle state
    with the embedding process (the CLI does, for drain accounting).
    """

    def __init__(
        self,
        service: DiagnosisService,
        config: ServerConfig = ServerConfig(),
        supervisor: Optional[ServiceSupervisor] = None,
    ) -> None:
        self.service = service
        self.config = config
        self.supervisor = (
            supervisor if supervisor is not None else ServiceSupervisor(service)
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._queue: Optional[asyncio.Queue] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._connections: set = set()
        self._conn_seq = 0
        self._active_lines = 0  # requests between readline and written reply

    # -- lifecycle ------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        if self._server is None:
            raise RuntimeError("server is not running")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._queue = asyncio.Queue(maxsize=self.config.queue_limit)
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.supervisor.lifecycle.try_to("ready")

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Cancel live connection handlers so no coroutine outlives the
        # event loop (a GC'd suspended handler raises at interpreter
        # teardown otherwise).  Re-cancel survivors: asyncio.wait_for
        # (the slow-client write deadline) can swallow a cancellation
        # delivered in the same tick its inner awaitable completes
        # (bpo-42130), leaving the handler parked on the next readline
        # with the cancel already consumed.
        pending = set(self._connections)
        while pending:
            for task in pending:
                task.cancel()
            _done, pending = await asyncio.wait(pending, timeout=1.0)
        self._connections.clear()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        self.supervisor.lifecycle.try_to("stopped")

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, flush in-flight, stop.

        The SIGTERM contract of ``repro serve``: the listener closes
        first (no new connections), the lifecycle moves to ``draining``
        (new diagnose requests on existing connections get the typed
        ``draining`` error), and the dispatcher keeps scoring until the
        queue is empty and every accepted request has its reply written
        — bounded by ``drain_grace``.  Counters: ``service.drained``
        marks a completed drain, ``service.drain.flushed`` counts the
        requests answered while draining.
        """
        recorder = obs.get_recorder()
        self.supervisor.lifecycle.try_to("draining")
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        deadline = time.monotonic() + self.config.drain_grace
        while time.monotonic() < deadline:
            queue_empty = self._queue is None or self._queue.empty()
            if queue_empty and self._active_lines == 0:
                break
            await asyncio.sleep(0.02)
        recorder.count("service.drained")
        await self.stop()

    async def serve_forever(self) -> None:
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- dispatcher -----------------------------------------------------

    async def _dispatch_loop(self) -> None:
        """Drain the queue, micro-batching adjacent pending requests.

        The loop body is exception-proof: whatever goes wrong scoring a
        batch, every request in it is answered (typed errors from the
        supervisor, a wrapped ``internal`` error for anything that
        slips past) and the dispatcher lives on — a dead dispatcher
        would leave every queued client waiting out its timeout in
        silence.
        """
        assert self._queue is not None
        recorder = obs.get_recorder()
        while True:
            batch: List[_Pending] = [await self._queue.get()]
            while (
                len(batch) < self.config.max_batch
                and not self._queue.empty()
            ):
                batch.append(self._queue.get_nowait())
            try:
                self._dispatch_batch(batch, recorder)
            except Exception as error:
                recorder.count("service.dispatch_failures")
                for pending in batch:
                    if not pending.future.done():
                        pending.future.set_exception(ServiceError(
                            f"internal dispatch failure: {error}"
                        ))

    def _dispatch_batch(self, batch: List[_Pending], recorder) -> None:
        now = time.monotonic()
        live: List[_Pending] = []
        for pending in batch:
            if pending.future.cancelled():
                continue
            if now > pending.deadline:
                pending.future.set_exception(RequestTimeoutError(
                    "request spent longer than "
                    f"{self.config.request_timeout:g}s queued"
                ))
                recorder.count("service.timeouts")
                continue
            live.append(pending)
        if not live:
            return
        with recorder.span("service.dispatch"):
            outcomes = self.supervisor.score(
                [pending.request for pending in live]
            )
        if self.supervisor.lifecycle.state == "draining":
            recorder.count("service.drain.flushed", len(live))
        for pending, outcome in zip(live, outcomes):
            if pending.future.done():
                continue
            if isinstance(outcome, BaseException):
                pending.future.set_exception(outcome)
            else:
                pending.future.set_result(outcome)

    # -- connection handling --------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        recorder = obs.get_recorder()
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        conn_id = self._conn_seq
        self._conn_seq += 1
        try:
            # Accept-time fault injection: a `raise` event here models a
            # transport blow-up before the first byte is served.
            await chaos.async_trip("service.connection", index=conn_id,
                                   attempt=0)
            while True:
                line = await reader.readline()
                if not line:
                    break
                self._active_lines += 1
                try:
                    response = await self._handle_line(line, recorder)
                    await self._send(writer, response, conn_id, recorder)
                finally:
                    self._active_lines -= 1
        except _SlowClientError:
            pass  # already counted; just drop the peer
        except ChaosError:
            recorder.count("service.connection_faults")
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _send(
        self, writer: asyncio.StreamWriter, response: dict, conn_id: int,
        recorder,
    ) -> None:
        """Write one response under the slow-client deadline.

        A reader that stalls past ``write_timeout`` with a full socket
        buffer is disconnected — the dispatcher's answer path must never
        block on one peer while others wait.
        """
        writer.write(json.dumps(response).encode() + b"\n")
        try:
            await asyncio.wait_for(
                self._drain_writer(writer, conn_id),
                timeout=self.config.write_timeout,
            )
        except asyncio.TimeoutError:
            recorder.count("service.slow_clients")
            raise _SlowClientError() from None

    async def _drain_writer(
        self, writer: asyncio.StreamWriter, conn_id: int
    ) -> None:
        # Write-time fault injection: a `hang` event (attempt 1) models
        # the stalled-reader backpressure the write deadline guards.
        await chaos.async_trip("service.connection", index=conn_id, attempt=1)
        await writer.drain()

    async def _handle_line(self, line: bytes, recorder) -> dict:
        request_id = None
        try:
            try:
                message = json.loads(line)
            except json.JSONDecodeError as exc:
                raise BadRequestError(f"bad JSON: {exc}") from None
            if not isinstance(message, dict):
                raise BadRequestError("request must be a JSON object")
            request_id = message.get("id")
            op = message.get("op")
            if op == "ping":
                return {"id": request_id, "ok": True, "result": "pong"}
            if op == "stats":
                return {
                    "id": request_id, "ok": True,
                    "result": self.service.stats(),
                }
            if op == "workloads":
                return {
                    "id": request_id, "ok": True,
                    "result": self.service.workload_names(),
                }
            if op == "health":
                return {
                    "id": request_id, "ok": True,
                    "result": self._health(),
                }
            if op == "ready":
                lifecycle = self.supervisor.lifecycle
                return {
                    "id": request_id, "ok": True,
                    "result": {
                        "ready": lifecycle.is_ready,
                        "state": lifecycle.state,
                    },
                }
            if op == "reload":
                workload = message.get("workload")
                if not isinstance(workload, str):
                    raise BadRequestError("reload needs a string 'workload'")
                version = self.service.reload(workload)
                return {
                    "id": request_id, "ok": True,
                    "result": {"workload": workload, "version": version},
                }
            if op != "diagnose":
                raise BadRequestError(f"unknown op {op!r}")
            return await self._handle_diagnose(message, request_id, recorder)
        except ServiceError as error:
            return self._error_response(request_id, error, recorder)
        except Exception as error:  # internal: never kill the connection
            return self._error_response(request_id, error, recorder)

    def _health(self) -> dict:
        health = self.supervisor.health()
        health["queue_depth"] = (
            0 if self._queue is None else self._queue.qsize()
        )
        return health

    async def _handle_diagnose(
        self, message: dict, request_id, recorder
    ) -> dict:
        assert self._queue is not None
        with recorder.span("service.request"):
            if not self.supervisor.lifecycle.accepting:
                return self._error_response(
                    request_id,
                    ServiceDrainingError(
                        "server is "
                        f"{self.supervisor.lifecycle.state}; "
                        "not accepting new diagnose requests"
                    ),
                    recorder,
                )
            shed = self.supervisor.admit()
            if shed is not None:
                recorder.count("service.overloaded")
                return {
                    "id": request_id, "ok": False,
                    "error": {"type": "overloaded", "message": shed},
                }
            request = self._parse_diagnose(message)
            loop = asyncio.get_event_loop()
            now = time.monotonic()
            pending = _Pending(
                request=request,
                future=loop.create_future(),
                enqueued_at=now,
                deadline=now + self.config.request_timeout,
            )
            try:
                self._queue.put_nowait(pending)
            except asyncio.QueueFull:
                recorder.count("service.overloaded")
                return {
                    "id": request_id, "ok": False,
                    "error": {
                        "type": "overloaded",
                        "message": (
                            "request queue is full "
                            f"({self.config.queue_limit} pending); retry"
                        ),
                    },
                }
            try:
                answer = await asyncio.wait_for(
                    pending.future, timeout=self.config.request_timeout
                )
            except asyncio.TimeoutError:
                recorder.count("service.timeouts")
                return self._error_response(
                    request_id,
                    RequestTimeoutError(
                        "no answer within "
                        f"{self.config.request_timeout:g}s"
                    ),
                    recorder,
                )
            top_k = message.get("top_k")
            ranking = answer.ranking if top_k is None else answer.ranking[:top_k]
            return {
                "id": request_id, "ok": True,
                "result": {
                    "workload": answer.workload,
                    "method": answer.method,
                    "version": answer.version,
                    "ranking": [
                        [str(edge), score] for edge, score in ranking
                    ],
                },
            }

    def _parse_diagnose(self, message: dict) -> DiagnosisRequest:
        workload = message.get("workload")
        if not isinstance(workload, str):
            raise BadRequestError("diagnose needs a string 'workload'")
        behavior = message.get("behavior")
        if behavior is None:
            raise BadRequestError("diagnose needs a 'behavior' matrix")
        try:
            matrix = np.asarray(behavior, dtype=float)
        except (TypeError, ValueError) as exc:
            raise BadRequestError(f"bad behavior matrix: {exc}") from None
        if matrix.ndim != 2:
            raise BadRequestError(
                f"behavior must be 2-D, got shape {matrix.shape}"
            )
        top_k = message.get("top_k")
        if top_k is not None and (not isinstance(top_k, int) or top_k < 1):
            raise BadRequestError("top_k must be a positive integer")
        error_function = message.get("error_function", "alg_rev")
        if not isinstance(error_function, str):
            raise BadRequestError("error_function must be a string name")
        try:
            by_name(error_function)
        except KeyError as exc:
            raise BadRequestError(str(exc)) from None
        # Reject unknown workloads and shape mismatches *before* the
        # queue: a bad request must fail alone, never poison the
        # micro-batch it would have been grouped into.
        expected = self.service.workload(workload).behavior_shape
        if matrix.shape != tuple(expected):
            raise BadRequestError(
                f"behavior shape {matrix.shape} != workload {workload!r} "
                f"shape {tuple(expected)}"
            )
        return DiagnosisRequest(
            workload=workload,
            behavior=matrix,
            error_function=error_function,
        )

    def _error_response(self, request_id, error, recorder) -> dict:
        tag = wire_type(error)
        recorder.count(f"service.errors.{tag}")
        return {
            "id": request_id, "ok": False,
            "error": {"type": tag, "message": str(error)},
        }
