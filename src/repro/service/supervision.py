"""Self-healing supervision for the diagnosis serving plane.

The service layer of PR 8 is a fair-weather machine: a killed pool
worker fails a whole micro-batch, a hot loop of failures keeps accepting
traffic it cannot serve, and there is no orderly way to stop or to swap
a dictionary under live queries.  This module adds the missing
operational layer — the same fault-tolerance discipline
:mod:`repro.resilience` gave the batch pipeline, applied to serving:

* :class:`Lifecycle` — the ``starting -> ready -> degraded -> draining
  -> stopped`` state machine, every transition counted through
  :mod:`repro.obs` and exposed over the wire as ``health``/``ready``.
* :class:`CircuitBreaker` — sliding-window admission control.  When the
  p95 batch latency or the batch failure rate over the recent window
  exceeds its thresholds the breaker opens and the server sheds load
  with typed ``overloaded`` wire errors; after a cooldown one half-open
  probe batch decides between closing and re-opening.
* :class:`ServiceSupervisor` — wraps :class:`DiagnosisService` scoring
  with per-group isolation: requests are grouped by ``(workload,
  error_function)`` exactly as the engine batches them, each group is
  scored independently, and a group that loses its compute plane
  mid-batch (``BrokenProcessPool`` / worker death, surfaced as
  :class:`~repro.resilience.WorkerPoolBrokenError`) is re-run — alone —
  one rung down the :data:`~repro.resilience.policy.DEGRADATION_LADDER`
  (process -> thread -> serial).  Answers are bit-identical across rungs
  (the build/scoring contract), so degradation is invisible in results.
  The primary plane is re-probed in a background thread and swapped back
  in once healthy (``degraded -> ready``).

Every failure path is exercised deterministically through the
``service.batch`` / ``service.store_load`` / ``service.connection``
chaos points (:mod:`repro.resilience.chaos`).
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from .. import obs
from ..core.parallel import map_chunked, resolve_parallel
from ..resilience import chaos
from ..resilience.errors import (
    ChunkTimeoutError,
    ResilienceError,
    WorkerPoolBrokenError,
)
from ..resilience.policy import RetryPolicy, fallback_rungs
from .engine import DiagnosisRequest, DiagnosisService, RankedDiagnosis
from .errors import BadRequestError, ServiceError

__all__ = [
    "STATES",
    "Lifecycle",
    "BreakerConfig",
    "CircuitBreaker",
    "SupervisorConfig",
    "ServiceSupervisor",
]


# ----------------------------------------------------------------------
# lifecycle state machine
# ----------------------------------------------------------------------

#: The serving states, in nominal order of appearance.
STATES = ("starting", "ready", "degraded", "draining", "stopped")

#: Legal transitions.  ``degraded`` is re-entrant with ``ready`` (planes
#: break and heal); ``draining`` only ever ends in ``stopped``.
_TRANSITIONS: Dict[str, Tuple[str, ...]] = {
    "starting": ("ready", "degraded", "draining", "stopped"),
    "ready": ("degraded", "draining", "stopped"),
    "degraded": ("ready", "draining", "stopped"),
    "draining": ("stopped",),
    "stopped": (),
}


class Lifecycle:
    """Thread-safe serving state with counted, validated transitions."""

    def __init__(self) -> None:
        self._state = "starting"
        self._lock = threading.Lock()
        self.history: List[str] = ["starting"]

    @property
    def state(self) -> str:
        return self._state

    @property
    def accepting(self) -> bool:
        """Whether new diagnose requests may enter the queue."""
        return self._state in ("starting", "ready", "degraded")

    @property
    def is_ready(self) -> bool:
        """Readiness verdict: serving, possibly on a degraded plane."""
        return self._state in ("ready", "degraded")

    def to(self, state: str) -> str:
        """Transition (idempotent on the current state; illegal raises)."""
        if state not in _TRANSITIONS:
            raise ValueError(f"unknown lifecycle state {state!r}")
        with self._lock:
            if state == self._state:
                return state
            if state not in _TRANSITIONS[self._state]:
                raise ValueError(
                    f"illegal lifecycle transition "
                    f"{self._state!r} -> {state!r}"
                )
            self._state = state
            self.history.append(state)
        obs.get_recorder().count(f"service.state.{state}")
        return state

    def try_to(self, state: str) -> bool:
        """Lenient transition: ``False`` instead of raising when illegal.

        The supervisor uses this for plane events — ``degrade`` while
        already draining must not blow up the drain.
        """
        try:
            self.to(state)
        except ValueError:
            return False
        return True

    def snapshot(self) -> Dict:
        with self._lock:
            return {"state": self._state, "history": list(self.history)}


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BreakerConfig:
    """Thresholds of the sliding-window circuit breaker.

    The window holds per-*batch* outcomes (latency seconds, ok flag).
    ``max_p95_latency`` of ``None`` disables the latency gate; the
    failure gate compares the windowed failure fraction against
    ``max_failure_rate``.  Nothing trips below ``min_samples`` — a cold
    server must not open on its first slow warm-up batch.  After
    ``cooldown`` seconds open, one half-open probe batch is admitted;
    its outcome decides between closing and re-opening.
    """

    window: int = 32
    min_samples: int = 8
    max_p95_latency: Optional[float] = None
    max_failure_rate: float = 0.5
    cooldown: float = 5.0

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.max_p95_latency is not None and self.max_p95_latency <= 0:
            raise ValueError("max_p95_latency must be positive (or None)")
        if not 0.0 < self.max_failure_rate <= 1.0:
            raise ValueError("max_failure_rate must be in (0, 1]")
        if self.cooldown < 0:
            raise ValueError("cooldown must be non-negative")


class CircuitBreaker:
    """closed -> open -> half-open admission gate over batch outcomes.

    ``clock`` is injectable so tests drive the cooldown deterministically
    instead of sleeping.
    """

    def __init__(
        self,
        config: BreakerConfig = BreakerConfig(),
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config
        self._clock = clock
        self._samples: deque = deque(maxlen=config.window)
        self._state = "closed"
        self._opened_at = 0.0
        self._reason = ""
        self._lock = threading.Lock()

    @property
    def state(self) -> str:
        return self._state

    def allow(self) -> Optional[str]:
        """``None`` to admit; otherwise the shed reason string."""
        with self._lock:
            if self._state == "closed":
                return None
            if self._state == "open":
                if self._clock() - self._opened_at >= self.config.cooldown:
                    self._state = "half_open"
                    obs.get_recorder().count("service.breaker.half_open")
                    return None  # the one probe batch
                return (
                    f"circuit breaker open ({self._reason}); "
                    f"retry after cooldown"
                )
            # half_open: the probe is in flight; shed until it reports.
            return "circuit breaker half-open: probe batch in flight"

    def record(self, latency: float, ok: bool) -> None:
        """Feed one batch outcome; may open, close, or re-open."""
        recorder = obs.get_recorder()
        with self._lock:
            if self._state == "half_open":
                if ok:
                    self._state = "closed"
                    self._samples.clear()
                    self._reason = ""
                    recorder.count("service.breaker.closed")
                else:
                    self._state = "open"
                    self._opened_at = self._clock()
                    recorder.count("service.breaker.reopened")
                self._samples.append((float(latency), bool(ok)))
                return
            self._samples.append((float(latency), bool(ok)))
            if self._state != "closed":
                return
            reason = self._trip_reason()
            if reason is not None:
                self._state = "open"
                self._opened_at = self._clock()
                self._reason = reason
                recorder.count("service.breaker.opened")

    def _trip_reason(self) -> Optional[str]:
        if len(self._samples) < self.config.min_samples:
            return None
        failures = sum(1 for _latency, ok in self._samples if not ok)
        rate = failures / len(self._samples)
        if rate > self.config.max_failure_rate:
            return (
                f"failure rate {rate:.2f} > "
                f"{self.config.max_failure_rate:.2f} "
                f"over last {len(self._samples)} batches"
            )
        limit = self.config.max_p95_latency
        if limit is not None:
            p95 = self._p95()
            if p95 > limit:
                return (
                    f"p95 batch latency {p95:.3f}s > {limit:.3f}s "
                    f"over last {len(self._samples)} batches"
                )
        return None

    def _p95(self) -> float:
        latencies = sorted(latency for latency, _ok in self._samples)
        if not latencies:
            return 0.0
        rank = max(int(math.ceil(0.95 * len(latencies))) - 1, 0)
        return latencies[rank]

    def snapshot(self) -> Dict:
        with self._lock:
            failures = sum(1 for _l, ok in self._samples if not ok)
            return {
                "state": self._state,
                "window": len(self._samples),
                "failures": failures,
                "p95_latency": self._p95(),
                "reason": self._reason,
            }


# ----------------------------------------------------------------------
# the supervisor
# ----------------------------------------------------------------------

#: Compute-plane death signatures: the pool broke under a batch.
_PLANE_FAILURES = (WorkerPoolBrokenError, BrokenExecutor, ChunkTimeoutError)

#: User-shaped errors: never a service failure for breaker accounting.
_USER_ERRORS = (BadRequestError,)


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs of one :class:`ServiceSupervisor`."""

    breaker: BreakerConfig = BreakerConfig()
    #: Probe and restore the primary plane in a background thread after
    #: a degradation (tests turn this off and call
    #: :meth:`ServiceSupervisor.restore_plane` synchronously).
    auto_restore: bool = True
    #: Seconds the background probe waits before its first attempt.
    restore_delay: float = 0.05


def _probe_chunk(_payload, indices: Sequence[int]) -> List[int]:
    """Trivial round-trip body for the plane-restore probe."""
    return list(indices)


class ServiceSupervisor:
    """Per-group supervised scoring plus lifecycle/admission state.

    One supervisor wraps one :class:`DiagnosisService`; the server calls
    :meth:`admit` at the front door and :meth:`score` from its
    dispatcher.  :meth:`score` never raises: every request gets either a
    :class:`RankedDiagnosis` or a typed exception in the returned list.
    """

    def __init__(
        self,
        service: DiagnosisService,
        config: SupervisorConfig = SupervisorConfig(),
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.service = service
        self.config = config
        self.lifecycle = Lifecycle()
        self.breaker = CircuitBreaker(config.breaker, clock=clock)
        self._clock = clock
        self._primary = service.parallel
        self._backend = resolve_parallel(self._primary).backend
        self._rung: Optional[str] = None  # current override backend
        self._lock = threading.Lock()
        self._restore_thread: Optional[threading.Thread] = None
        self._batches = 0

    # -- admission -------------------------------------------------------

    def admit(self) -> Optional[str]:
        """``None`` to admit a request; else the typed-overloaded reason."""
        reason = self.breaker.allow()
        if reason is not None:
            obs.get_recorder().count("service.breaker.shed")
        return reason

    # -- supervised scoring ----------------------------------------------

    def score(
        self, requests: Sequence[DiagnosisRequest]
    ) -> List[Union[RankedDiagnosis, BaseException]]:
        """Score a micro-batch with per-group fault isolation.

        Requests are grouped exactly as
        :meth:`DiagnosisService.diagnose_batch` groups them, then each
        group is scored in its own engine call: a group that fails —
        plane death after the ladder is exhausted, a typed engine error,
        or an unexpected exception — poisons only its own requests,
        which receive a typed exception object in the result slot
        (anything untyped is wrapped as an ``internal``
        :class:`ServiceError`).  The batch outcome feeds the breaker.
        """
        recorder = obs.get_recorder()
        outcomes: List[Union[RankedDiagnosis, BaseException, None]]
        outcomes = [None] * len(requests)
        groups: Dict[Tuple[str, str], List[int]] = {}
        for index, request in enumerate(requests):
            key = (request.workload, request.error_function)
            groups.setdefault(key, []).append(index)
        start = self._clock()
        batch_ok = True
        with recorder.span("service.supervised_batch"):
            self._batches += 1
            batch_index = self._batches - 1
            for (name, function_name), indices in groups.items():
                sub = [requests[i] for i in indices]
                try:
                    answers = self._score_group(sub, batch_index)
                except Exception as error:
                    if not isinstance(error, _USER_ERRORS):
                        batch_ok = False
                    typed: BaseException = error
                    if not isinstance(error, ResilienceError):
                        typed = ServiceError(
                            f"internal failure scoring group "
                            f"({name}, {function_name}): {error}"
                        )
                    recorder.count("service.group_failures")
                    for i in indices:
                        outcomes[i] = typed
                    continue
                for i, answer in zip(indices, answers):
                    outcomes[i] = answer
        self.breaker.record(self._clock() - start, batch_ok)
        return [
            outcome
            if outcome is not None
            else ServiceError("request was never scored (supervisor bug)")
            for outcome in outcomes
        ]

    def _score_group(
        self, requests: Sequence[DiagnosisRequest], batch_index: int
    ) -> List[RankedDiagnosis]:
        """One group through the engine, walking the ladder on plane death."""
        recorder = obs.get_recorder()
        current = self._rung or self._backend
        rungs = (current,) + fallback_rungs(current)
        last: Optional[BaseException] = None
        for attempt, rung in enumerate(rungs):
            try:
                chaos.trip("service.batch", index=batch_index, attempt=attempt)
                if attempt:
                    self._degrade_to(rung)
                return self.service.diagnose_batch(requests)
            except _PLANE_FAILURES as error:
                recorder.count("service.supervision.plane_failures")
                last = error
                continue
        assert last is not None
        raise last

    # -- plane degradation and restore ------------------------------------

    def _degrade_to(self, rung: str) -> None:
        recorder = obs.get_recorder()
        with self._lock:
            self._rung = rung
            self.service.set_parallel(rung)
        recorder.count("service.supervision.fallbacks")
        recorder.count(f"service.supervision.fallback.{rung}")
        self.lifecycle.try_to("degraded")
        if self.config.auto_restore:
            self._schedule_restore()

    def _schedule_restore(self) -> None:
        with self._lock:
            if (
                self._restore_thread is not None
                and self._restore_thread.is_alive()
            ):
                return
            self._restore_thread = threading.Thread(
                target=self._restore_background,
                name="repro-service-restore",
                daemon=True,
            )
            self._restore_thread.start()

    def _restore_background(self) -> None:
        if self.config.restore_delay > 0:
            time.sleep(self.config.restore_delay)
        self.restore_plane()

    def restore_plane(self) -> bool:
        """Probe the primary plane; swap it back in on success.

        The probe is a trivial :func:`map_chunked` round trip on the
        primary configuration with retries and degradation *off* — a
        probe that silently degraded would report a healthy plane that
        is still broken.  On success the service's parallel plane reverts
        to the primary and the lifecycle recovers ``degraded -> ready``.
        """
        if self._rung is None:
            return True
        recorder = obs.get_recorder()
        try:
            probe = RetryPolicy(max_retries=0, jitter=0.0, degrade=False)
            map_chunked(
                _probe_chunk,
                None,
                4,
                config=resolve_parallel(self._primary),
                policy=probe,
            )
        except Exception:
            recorder.count("service.supervision.restore_failed")
            return False
        with self._lock:
            self._rung = None
            self.service.set_parallel(self._primary)
        recorder.count("service.supervision.restored")
        self.lifecycle.try_to("ready")
        return True

    # -- introspection ----------------------------------------------------

    @property
    def degraded(self) -> bool:
        return self._rung is not None

    def health(self) -> Dict:
        """The ``op: health`` document: state, breaker, plane, counters."""
        return {
            "state": self.lifecycle.state,
            "ready": self.lifecycle.is_ready,
            "breaker": self.breaker.snapshot(),
            "plane": {
                "primary": self._backend,
                "current": self._rung or self._backend,
                "degraded": self._rung is not None,
            },
            "batches_supervised": self._batches,
        }
