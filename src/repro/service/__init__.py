"""repro.service — diagnosis as a service (ROADMAP north-star layer).

The amortize-once/query-many serving stack over the core diagnosis
library:

* :class:`DiagnosisService` (:mod:`~repro.service.engine`) — a warm,
  thread-safe engine holding precompiled timing artifacts and fault
  dictionaries; ``diagnose_batch`` groups queries per (workload, error
  function) and scores them in one vectorized kernel call, bit-identical
  to the one-shot :func:`repro.core.diagnose` path,
* :class:`DiagnosisServer` (:mod:`~repro.service.server`) — the asyncio
  JSON-lines front end with a bounded queue, micro-batching dispatcher
  and typed backpressure/timeout errors (``repro serve``),
* :class:`ServiceClient` (:mod:`~repro.service.client`) — the thin
  synchronous client behind ``repro query``, with opt-in
  reconnect-and-retry (``retries=``),
* :class:`ServiceSupervisor` (:mod:`~repro.service.supervision`) — the
  self-healing layer: per-group degradation-ladder recovery from worker
  death, a sliding-window circuit breaker, the
  ``starting -> ready -> degraded -> draining -> stopped`` lifecycle,
  and hot dictionary reload,
* :mod:`~repro.service.errors` — the typed failure taxonomy and its
  stable wire tags (append-only; pinned by lint rule R605).

Dictionaries resolve through :func:`repro.core.cache.resolve_cache`;
point ``REPRO_CACHE_DIR`` at a directory and set
``REPRO_CACHE_FORMAT=store`` to share warm dictionaries across service
processes as read-only mmapped pages.
"""

from .engine import (
    DiagnosisRequest,
    DiagnosisService,
    RankedDiagnosis,
    Workload,
    draw_query_behaviors,
    standard_workload,
)
from .server import DiagnosisServer, ServerConfig
from .client import RemoteDiagnosis, ServiceClient
from .supervision import (
    BreakerConfig,
    CircuitBreaker,
    Lifecycle,
    ServiceSupervisor,
    SupervisorConfig,
)
from .errors import (
    BadRequestError,
    QueueFullError,
    RequestTimeoutError,
    ServiceConnectionError,
    ServiceDrainingError,
    ServiceError,
    UnknownWorkloadError,
    WorkloadReloadError,
)

__all__ = [
    "DiagnosisRequest",
    "DiagnosisService",
    "RankedDiagnosis",
    "Workload",
    "draw_query_behaviors",
    "standard_workload",
    "DiagnosisServer",
    "ServerConfig",
    "RemoteDiagnosis",
    "ServiceClient",
    "BreakerConfig",
    "CircuitBreaker",
    "Lifecycle",
    "ServiceSupervisor",
    "SupervisorConfig",
    "BadRequestError",
    "QueueFullError",
    "RequestTimeoutError",
    "ServiceConnectionError",
    "ServiceDrainingError",
    "ServiceError",
    "UnknownWorkloadError",
    "WorkloadReloadError",
]
