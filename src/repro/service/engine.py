"""The warm diagnosis engine: precompiled workloads, batched queries.

A :class:`DiagnosisService` is the amortize-once/query-many core of the
service layer (ROADMAP north-star; the hierarchical-reuse structure of
Li & Schlichtmann's timing-model extraction applied one level up): each
registered *workload* compiles its circuit timing, simulates the
defect-free pattern responses, and builds the probabilistic fault
dictionary exactly once — after which every query is a cheap vectorized
scoring pass over the warm signature stack via
:func:`repro.core.diagnosis.diagnose_batch`.

Warm answers are bit-identical to the one-shot
:func:`repro.core.diagnosis.diagnose` path on the same dictionary (the
acceptance contract, enforced by ``tests/test_service.py``): the engine
adds grouping and bookkeeping, never arithmetic.

Dictionaries flow through :func:`repro.core.cache.resolve_cache`, so a
``DictionaryStore`` (``REPRO_CACHE_FORMAT=store``) serves the signature
stack as read-only mmapped pages shared across service processes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import obs
from ..atpg import generate_path_tests
from ..atpg.patterns import PatternPairSet
from ..circuits import load_benchmark
from ..circuits.netlist import Edge
from ..defects import SingleDefectModel, draw_failing_trial
from ..timing import (
    CircuitTiming,
    SampleSpace,
    diagnosis_clock,
    simulate_pattern_set,
)
from ..core import diagnose_batch as _core_diagnose_batch
from ..core import by_name
from ..core.cache import (
    DictionaryCache,
    DictionaryStore,
    dictionary_cache_key,
    resolve_cache,
)
from ..core.dictionary import ProbabilisticFaultDictionary, build_dictionary
from ..core.parallel import ParallelConfig
from ..hier.partition import partition_circuit
from ..hier.replay import resolve_hier
from ..resilience import chaos
from ..sampling import SizeDistribution, resolve_sampler
from .errors import BadRequestError, UnknownWorkloadError, WorkloadReloadError

__all__ = [
    "DiagnosisRequest",
    "RankedDiagnosis",
    "DiagnosisService",
    "Workload",
    "standard_workload",
    "draw_query_behaviors",
]


@dataclass(frozen=True, eq=False)
class DiagnosisRequest:
    """One query: a behavior matrix against a named warm workload."""

    workload: str
    behavior: np.ndarray
    error_function: str = "alg_rev"


@dataclass
class RankedDiagnosis:
    """The service's answer: best-first suspect ranking for one request.

    ``version`` tags which dictionary generation scored the request — it
    is the proof obligation of hot reload: every suspect in ``ranking``
    came from exactly that generation, never a mix.
    """

    workload: str
    method: str
    ranking: List[Tuple[Edge, float]]
    version: int = 0

    def top(self, k: int = 1) -> List[Edge]:
        if k < 1:
            raise ValueError("K must be at least 1")
        return [edge for edge, _score in self.ranking[:k]]


@dataclass
class Workload:
    """Everything one workload needs, compiled once at registration.

    ``dictionary`` stays ``None`` until the first query (or an explicit
    :meth:`DiagnosisService.warm`) builds it — the cold/warm latency
    split ``benchmarks/bench_service.py`` measures.
    """

    name: str
    timing: CircuitTiming
    patterns: PatternPairSet
    clk: float
    suspects: List[Edge]
    size_samples: np.ndarray
    size_distribution: Optional[SizeDistribution] = None
    base_simulations: Optional[Sequence] = None
    dictionary: Optional[ProbabilisticFaultDictionary] = None
    #: Dictionary generation: bumped by every successful hot reload and
    #: threaded through :class:`RankedDiagnosis` and the wire result.
    version: int = 0

    @property
    def behavior_shape(self) -> Tuple[int, int]:
        # One row per circuit output, one column per pattern pair — the
        # same axes as ``m_crt`` and every suspect signature.  (Not the
        # *targeted* observation count: a behavior matrix reports every
        # output, whether or not the pattern set targets it.)
        return (len(self.patterns.circuit.outputs), len(self.patterns))


class DiagnosisService:
    """A long-lived, thread-safe engine answering diagnosis queries.

    ``cache`` / ``parallel`` / ``sampler`` flow into dictionary builds
    exactly as in :func:`repro.core.dictionary.build_dictionary` (all
    bit-identical knobs).  The per-workload build lock makes concurrent
    first queries build each dictionary once, not once per caller.
    """

    def __init__(
        self,
        cache: Optional[Union[DictionaryCache, DictionaryStore, str]] = None,
        parallel: Optional[Union[ParallelConfig, str]] = None,
        sampler=None,
        hier=None,
    ) -> None:
        self._cache = resolve_cache(cache)
        self._parallel = parallel
        self._sampler = sampler
        self._hier = hier
        self._workloads: Dict[str, Workload] = {}
        self._locks: Dict[str, threading.Lock] = {}
        self._registry_lock = threading.Lock()
        self.queries_served = 0
        self.batches_served = 0

    # -- registration ---------------------------------------------------

    def register(self, workload: Workload) -> Workload:
        """Register a compiled workload under its name (idempotent)."""
        with self._registry_lock:
            self._workloads[workload.name] = workload
            self._locks.setdefault(workload.name, threading.Lock())
        return workload

    def workload(self, name: str) -> Workload:
        try:
            return self._workloads[name]
        except KeyError:
            raise UnknownWorkloadError(
                f"unknown workload {name!r}; registered: "
                f"{sorted(self._workloads)}"
            ) from None

    def workload_names(self) -> List[str]:
        return sorted(self._workloads)

    # -- warm-up --------------------------------------------------------

    def warm(self, name: str) -> ProbabilisticFaultDictionary:
        """Build (or fetch) the workload's dictionary; idempotent."""
        workload = self.workload(name)
        if workload.dictionary is not None:
            return workload.dictionary
        with self._locks[name]:
            if workload.dictionary is None:
                recorder = obs.get_recorder()
                with recorder.span("service.warm"):
                    recorder.count("service.warmups")
                    workload.dictionary = build_dictionary(
                        workload.timing,
                        workload.patterns,
                        workload.clk,
                        workload.suspects,
                        workload.size_samples,
                        base_simulations=workload.base_simulations,
                        parallel=self._parallel,
                        cache=self._cache,
                        sampler=self._sampler,
                        size_distribution=workload.size_distribution,
                        hier=self._hier,
                    )
                    # Pre-stack signatures so the first query pays no
                    # assembly cost either (a no-op for store-served
                    # dictionaries, which arrive with the mmapped stack).
                    workload.dictionary.signature_stack()
        return workload.dictionary

    def warm_all(self) -> None:
        for name in self.workload_names():
            self.warm(name)

    # -- execution plane -------------------------------------------------

    @property
    def parallel(self):
        """The current parallel plane (builds run through it)."""
        return self._parallel

    def set_parallel(self, parallel) -> None:
        """Swap the parallel plane — the supervisor's degradation hook.

        Only future dictionary builds are affected; answers never change
        (builds are bit-identical across backends by contract).
        """
        self._parallel = parallel

    @property
    def cache(self):
        """The resolved dictionary cache/store (``None`` when disabled)."""
        return self._cache

    # -- hot reload ------------------------------------------------------

    def cache_key(self, name: str) -> str:
        """The content address a workload's dictionary lives under.

        Mirrors :func:`repro.core.dictionary.build_dictionary` exactly
        (same fingerprints, same sampler token), so a rewritten store
        entry for this key is *the* entry a reload must pick up.
        """
        workload = self.workload(name)
        sampler_config = resolve_sampler(self._sampler)
        token = None
        if not sampler_config.is_plain:
            token = sampler_config.cache_token(workload.size_distribution)
        hier_config = resolve_hier(self._hier)
        hier_token = None
        if hier_config.enabled:
            graph = partition_circuit(
                workload.timing.circuit, hier_config.n_blocks
            )
            hier_token = hier_config.cache_token(graph)
        return dictionary_cache_key(
            workload.timing,
            list(workload.patterns),
            (float(workload.clk),),
            workload.suspects,
            workload.size_samples,
            sampler_token=token,
            hier_token=hier_token,
        )

    def reload(self, name: str) -> int:
        """Atomically swap a workload's dictionary from its store entry.

        Reads the rewritten :class:`~repro.core.cache.DictionaryStore`
        manifest for the workload's cache key, validates it loudly
        (:meth:`DictionaryStore.read_manifest`), maps the payload, and
        swaps the ``(dictionary, version)`` pair under the per-workload
        lock — in-flight queries keep scoring against the generation
        they snapshotted; later groups see the new one.  Any failure
        raises a typed :class:`WorkloadReloadError` and leaves the old
        mapping serving.  Returns the new generation number.
        """
        workload = self.workload(name)
        recorder = obs.get_recorder()
        with recorder.span("service.reload"):
            try:
                if not isinstance(self._cache, DictionaryStore):
                    raise ValueError(
                        "hot reload needs a DictionaryStore cache "
                        f"(service cache is {type(self._cache).__name__})"
                    )
                chaos.trip("service.store_load", index=workload.version)
                key = self.cache_key(name)
                manifest = self._cache.read_manifest(key)
                if manifest["n_suspects"] != len(workload.suspects):
                    raise ValueError(
                        f"store entry has {manifest['n_suspects']} suspects, "
                        f"workload has {len(workload.suspects)}"
                    )
                expected = workload.behavior_shape
                if tuple(manifest["shape"][1:]) != tuple(expected):
                    raise ValueError(
                        f"store entry shape {tuple(manifest['shape'][1:])} "
                        f"!= workload behavior shape {tuple(expected)}"
                    )
                payload = self._cache.load(key)
                if payload is None:
                    raise ValueError(
                        "store entry vanished or failed structural checks "
                        "while mapping"
                    )
            except Exception as exc:
                recorder.count("service.reload.failed")
                raise WorkloadReloadError(
                    f"hot reload of workload {name!r} rejected (still "
                    f"serving generation {workload.version}): {exc}"
                ) from exc
            stack = payload.get("stack")
            dictionary = ProbabilisticFaultDictionary(
                timing=workload.timing,
                clk=workload.clk,
                m_crt=payload["m_crt"],
                suspects=list(workload.suspects),
                signatures=dict(zip(workload.suspects, payload["signatures"])),
                size_samples=workload.size_samples,
                _signature_stack=stack[1:] if stack is not None else None,
            )
            dictionary.signature_stack()
            with self._locks[name]:
                workload.dictionary = dictionary
                workload.version += 1
                version = workload.version
            recorder.count("service.reloads")
            return version

    # -- queries --------------------------------------------------------

    def diagnose_batch(
        self, requests: Sequence[DiagnosisRequest]
    ) -> List[RankedDiagnosis]:
        """Answer a batch of queries, preserving request order.

        Requests are grouped by ``(workload, error_function)`` and each
        group is scored in one vectorized kernel call — answers are
        bit-identical to running the one-shot scalar path per request,
        and therefore independent of how requests are batched or
        interleaved across clients.  A bad request fails the *batch*
        with a typed error before any scoring runs, so partial answers
        never escape.
        """
        recorder = obs.get_recorder()
        groups: Dict[Tuple[str, str], List[int]] = {}
        for index, request in enumerate(requests):
            try:
                by_name(request.error_function)
            except KeyError as exc:
                raise BadRequestError(str(exc)) from None
            self.workload(request.workload)  # raises UnknownWorkloadError
            key = (request.workload, request.error_function)
            groups.setdefault(key, []).append(index)

        answers: List[Optional[RankedDiagnosis]] = [None] * len(requests)
        with recorder.span("service.batch"):
            recorder.count("service.batches")
            recorder.count("service.queries", len(requests))
            for (name, function_name), indices in groups.items():
                self.warm(name)
                workload = self.workload(name)
                # Snapshot one (dictionary, version) pair under the
                # workload lock: a concurrent hot reload lands wholly
                # before or wholly after this group, so a group is never
                # scored against a torn mix of generations.
                with self._locks[name]:
                    dictionary = workload.dictionary
                    version = workload.version
                behaviors = []
                for index in indices:
                    behavior = np.asarray(requests[index].behavior)
                    if behavior.shape != dictionary.m_crt.shape:
                        raise BadRequestError(
                            f"behavior shape {behavior.shape} != workload "
                            f"{name!r} shape {dictionary.m_crt.shape}"
                        )
                    behaviors.append(behavior)
                results = _core_diagnose_batch(
                    dictionary, behaviors, by_name(function_name)
                )
                for index, result in zip(indices, results):
                    answers[index] = RankedDiagnosis(
                        workload=name,
                        method=result.method,
                        ranking=result.ranking,
                        version=version,
                    )
        self.queries_served += len(requests)
        self.batches_served += 1
        return [answer for answer in answers if answer is not None]

    def diagnose(
        self,
        workload: str,
        behavior: np.ndarray,
        error_function: str = "alg_rev",
    ) -> RankedDiagnosis:
        """Single-query convenience wrapper over :meth:`diagnose_batch`."""
        return self.diagnose_batch(
            [DiagnosisRequest(workload, behavior, error_function)]
        )[0]

    # -- introspection --------------------------------------------------

    def stats(self) -> Dict:
        """Counters + per-workload warm state (for ``op: stats``)."""
        cache_stats = None
        if self._cache is not None:
            cache_stats = {
                "hits": self._cache.stats.hits,
                "misses": self._cache.stats.misses,
                "stores": self._cache.stats.stores,
            }
        return {
            "queries_served": self.queries_served,
            "batches_served": self.batches_served,
            "workloads": {
                name: {
                    "warm": workload.dictionary is not None,
                    "suspects": len(workload.suspects),
                    "behavior_shape": list(workload.behavior_shape),
                    "version": workload.version,
                }
                for name, workload in sorted(self._workloads.items())
            },
            "cache": cache_stats,
        }


def standard_workload(
    benchmark: str,
    samples: int = 300,
    seed: int = 0,
    n_paths: int = 8,
) -> Tuple[Workload, SingleDefectModel]:
    """The canonical workload for a benchmark circuit, fully determined
    by ``(benchmark, samples, seed, n_paths)``.

    Mirrors the one-shot diagnosis flow (``quick_diagnosis_demo``): draw
    a defect site, generate path-delay patterns through it, pick the
    diagnosis clock, and take the full sensitized-edge suspect set from a
    failing trial at that clock.  CLI, benchmark, and tests all build
    workloads through this helper so they agree on every artifact.
    """
    circuit = load_benchmark(benchmark, seed=seed)
    timing = CircuitTiming(circuit, SampleSpace(n_samples=samples, seed=seed))
    rng = np.random.default_rng(seed)
    model = SingleDefectModel(timing)
    defect = patterns = None
    for _ in range(20):
        defect = model.draw(rng)
        patterns, _tests = generate_path_tests(
            timing, defect.edge, n_paths=n_paths, rng_seed=seed
        )
        if len(patterns):
            break
    if patterns is None or not len(patterns):
        raise RuntimeError(
            f"could not generate patterns for any drawn defect on "
            f"{benchmark!r} (seed {seed})"
        )
    simulations = simulate_pattern_set(timing, list(patterns))
    clk = diagnosis_clock(
        timing, list(patterns), 0.85,
        simulations=simulations, targets=patterns.target_observations(),
    )
    from ..core import suspect_edges

    trial, _redraws = draw_failing_trial(
        timing, patterns, clk, model, rng, defect=defect
    )
    suspects = suspect_edges(simulations, trial.behavior)
    return (
        Workload(
            name=benchmark,
            timing=timing,
            patterns=patterns,
            clk=clk,
            suspects=list(suspects),
            size_samples=model.dictionary_size_variable().samples,
            size_distribution=model.dictionary_size_distribution(),
            base_simulations=simulations,
        ),
        model,
    )


def draw_query_behaviors(
    workload: Workload,
    model: SingleDefectModel,
    n: int,
    seed: int = 1000,
) -> List[np.ndarray]:
    """Deterministic failing-chip behavior matrices for a workload.

    Behavior ``k`` is drawn with its own ``default_rng(seed + offset)``,
    so a query stream is reproducible and independent of batch sizes —
    the concurrency tests compare rankings for the *same* behaviors
    routed through differently interleaved client batches.  A seed
    offset whose drawn defect the pattern set cannot expose is skipped
    (deterministically — the scan order is fixed), so one untestable
    site never sinks the whole stream.
    """
    behaviors: List[np.ndarray] = []
    offset = 0
    limit = 10 * n + 100  # plenty of headroom before declaring defeat
    while len(behaviors) < n:
        if offset >= limit:
            raise RuntimeError(
                f"drew only {len(behaviors)}/{n} failing behaviors in "
                f"{limit} seed offsets; workload {workload.name!r} is "
                "effectively untestable"
            )
        try:
            trial, _redraws = draw_failing_trial(
                workload.timing,
                workload.patterns,
                workload.clk,
                model,
                np.random.default_rng(seed + offset),
            )
        except RuntimeError:
            offset += 1
            continue
        behaviors.append(trial.behavior)
        offset += 1
    return behaviors
