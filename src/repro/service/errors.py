"""Typed failure taxonomy of the diagnosis service layer.

Extends the :mod:`repro.resilience` error family so the CLI exit-code
policy applies unchanged: every :class:`ServiceError` is a
:class:`~repro.resilience.ResilienceError`, and the two *user*-error
shapes (:class:`BadRequestError`, :class:`UnknownWorkloadError`) are
additionally flagged for the usage exit code (2) rather than the
transient one (3).

Wire mapping: the JSON-lines server serializes each class to a stable
``error.type`` tag (:data:`WIRE_TYPES`), and the client rehydrates the
tag back into the same class — callers dispatch on *types* on both
sides, never on message strings.
"""

from __future__ import annotations

from typing import Dict, Type

from ..resilience import ResilienceError

__all__ = [
    "ServiceError",
    "BadRequestError",
    "UnknownWorkloadError",
    "QueueFullError",
    "RequestTimeoutError",
    "ServiceConnectionError",
    "ServiceDrainingError",
    "WorkloadReloadError",
    "WIRE_TYPES",
    "error_from_wire",
    "wire_type",
]


class ServiceError(ResilienceError):
    """Base of every typed failure raised by :mod:`repro.service`."""


class BadRequestError(ServiceError):
    """A malformed request (bad shape, unknown op, bad JSON): user error."""


class UnknownWorkloadError(BadRequestError):
    """The request names a workload the service never registered."""


class QueueFullError(ServiceError):
    """Backpressure verdict: the bounded request queue is full.

    Raised (and sent as ``error.type: "overloaded"``) *immediately* when
    a request cannot be enqueued — the server never buffers beyond its
    queue bound, so a saturated service degrades into fast rejections a
    client can retry against, not into unbounded memory growth.
    """


class RequestTimeoutError(ServiceError):
    """A request missed its deadline while queued or being scored."""


class ServiceConnectionError(ServiceError):
    """Client-side transport failure (refused, reset, protocol junk)."""


class ServiceDrainingError(ServiceError):
    """The server is draining (SIGTERM received): in-flight work finishes,
    new diagnose requests are rejected so the process can exit cleanly."""


class WorkloadReloadError(ServiceError):
    """A hot dictionary reload was rejected (bad manifest, shape drift).

    The service keeps answering from the previous dictionary generation —
    a failed reload degrades into this typed error, never into a torn or
    mixed mapping.
    """


#: Stable wire tags — part of the protocol, **append-only**: a released
#: tag is never removed, re-typed, or reordered (lint rule R605 pins the
#: taxonomy against ``lint.resilience.WIRE_TAXONOMY_BASELINE``).
WIRE_TYPES: Dict[str, Type[ServiceError]] = {
    "bad_request": BadRequestError,
    "unknown_workload": UnknownWorkloadError,
    "overloaded": QueueFullError,
    "timeout": RequestTimeoutError,
    "connection": ServiceConnectionError,
    "internal": ServiceError,
    "draining": ServiceDrainingError,
    "reload_failed": WorkloadReloadError,
}

_TO_WIRE = {cls: tag for tag, cls in WIRE_TYPES.items()}


def wire_type(error: BaseException) -> str:
    """The ``error.type`` tag for an exception (``internal`` fallback)."""
    return _TO_WIRE.get(type(error), "internal")


def error_from_wire(tag: str, message: str) -> ServiceError:
    """Rehydrate a wire error tag into the matching typed exception."""
    return WIRE_TYPES.get(tag, ServiceError)(message)
