"""Two-frame PODEM-style justification engine.

The path-delay ATPG reduces a path test to a set of *constraints*: required
settled logic values on specific nets in specific frames (frame 0 = first
vector ``v1``, frame 1 = second vector ``v2``).  This engine searches for a
primary-input assignment (two vectors, partially specified) satisfying all
constraints, by PODEM-style decision making:

* decisions are made only on (primary input, frame) pairs,
* implications are computed by three-valued simulation restricted to the
  transitive fanin cone of the constrained nets — the cone is *compiled*
  once per ``justify`` call into flat integer tables so the inner loop is
  allocation-free,
* an objective (an unsatisfied constraint) is backtraced through X-valued
  gate inputs to find the next decision, preferring controlling-value
  shortcuts,
* conflicts flip the most recent untried decision; a backtrack limit bounds
  the search (untestable-path detection is then conservative, as in any
  practical ATPG).

The engine knows nothing about delay testing itself — constraint semantics
live in :mod:`repro.atpg.pathdelay`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..circuits.library import GateType, X
from ..circuits.netlist import Circuit

__all__ = ["Justifier", "JustifyResult", "Key"]

#: A constraint key: (net name, frame index 0|1).
Key = Tuple[str, int]

# Compiled gate opcodes (inlined in the hot loop).
_OP_INPUT, _OP_BUF, _OP_NOT, _OP_AND, _OP_NAND, _OP_OR, _OP_NOR, _OP_XOR, _OP_XNOR = range(9)

_OPCODE = {
    GateType.INPUT: _OP_INPUT,
    GateType.BUF: _OP_BUF,
    GateType.OUTPUT: _OP_BUF,
    GateType.NOT: _OP_NOT,
    GateType.AND: _OP_AND,
    GateType.NAND: _OP_NAND,
    GateType.OR: _OP_OR,
    GateType.NOR: _OP_NOR,
    GateType.XOR: _OP_XOR,
    GateType.XNOR: _OP_XNOR,
}

#: Controlling input value per opcode (None where not applicable).
_OP_CONTROLLING = {
    _OP_AND: 0,
    _OP_NAND: 0,
    _OP_OR: 1,
    _OP_NOR: 1,
}
_OP_INVERTING = {_OP_NOT, _OP_NAND, _OP_NOR, _OP_XNOR}


@dataclass
class JustifyResult:
    """Outcome of a justification run.

    ``assignment`` maps (input net, frame) to 0/1 for the inputs the search
    had to pin; other inputs are free and may be filled arbitrarily.
    ``backtracks`` reports search effort.
    """

    success: bool
    assignment: Dict[Key, int]
    backtracks: int

    def vectors(
        self, circuit: Circuit, rng=None, fill: str = "quiet"
    ) -> Tuple[List[int], List[int]]:
        """Materialize full (v1, v2) vectors, filling free inputs.

        The paper notes test quality depends on how the unspecified input
        values are filled (Section G, the GA-based idea).  Two strategies:

        * ``"quiet"`` (default) — free inputs hold the same (random) value
          in both frames, and inputs pinned in only one frame keep that
          value in the other.  This launches no transitions beyond what the
          constraints require, so the targeted path dominates the induced
          circuit — the single-input-change idea used for high-resolution
          delay diagnosis patterns.
        * ``"random"`` — independent random values per frame; noisier tests
          that sensitize many incidental paths (used by ablations).
        """
        from ..rng import coerce_rng

        rng = coerce_rng(rng)
        if fill not in ("quiet", "random"):
            raise ValueError("fill must be 'quiet' or 'random'")
        v1, v2 = [], []
        for net in circuit.inputs:
            a = self.assignment.get((net, 0))
            b = self.assignment.get((net, 1))
            if fill == "random":
                a = rng.randint(0, 1) if a is None else a
                b = rng.randint(0, 1) if b is None else b
            else:
                if a is None and b is None:
                    a = b = rng.randint(0, 1)
                elif a is None:
                    a = b
                elif b is None:
                    b = a
            v1.append(a)
            v2.append(b)
        return v1, v2


class _Compiled:
    """Flat-array view of the fanin cone relevant to one constraint set."""

    __slots__ = (
        "names",
        "index",
        "opcodes",
        "fanins",
        "fanouts",
        "n",
        "constraints",
    )

    def __init__(self, circuit: Circuit, constraints: Dict[Key, int]) -> None:
        # multi-source backward DFS: union of the constrained nets' fanin cones
        relevant = {net for net, _frame in constraints}
        stack = list(relevant)
        while stack:
            current = stack.pop()
            for fanin in circuit.gates[current].fanins:
                if fanin not in relevant:
                    relevant.add(fanin)
                    stack.append(fanin)
        self.names = [n for n in circuit.topological_order if n in relevant]
        self.index = {name: i for i, name in enumerate(self.names)}
        self.n = len(self.names)
        self.opcodes: List[int] = []
        self.fanins: List[List[int]] = []
        self.fanouts: List[List[int]] = [[] for _ in range(self.n)]
        for i, name in enumerate(self.names):
            gate = circuit.gates[name]
            self.opcodes.append(_OPCODE[gate.gate_type])
            fanin_ids = [self.index[f] for f in gate.fanins]
            self.fanins.append(fanin_ids)
            for f in fanin_ids:
                self.fanouts[f].append(i)
        # constraints as (node index, frame, value)
        self.constraints = [
            (self.index[net], frame, value)
            for (net, frame), value in constraints.items()
        ]


class Justifier:
    """Reusable justification engine for one circuit.

    ``guidance`` optionally supplies SCOAP measures
    (:func:`repro.logic.testability.compute_scoap`): backtrace then prefers
    the X-input that is cheapest to drive to the needed value, which cuts
    backtracking on hard constraint sets.
    """

    def __init__(
        self,
        circuit: Circuit,
        backtrack_limit: int = 150,
        guidance=None,
    ) -> None:
        self.circuit = circuit
        self.backtrack_limit = backtrack_limit
        self.guidance = guidance

    # ------------------------------------------------------------------
    def justify(
        self,
        constraints: Dict[Key, int],
        backtrack_limit: Optional[int] = None,
    ) -> JustifyResult:
        """Search for an input assignment satisfying ``constraints``.

        Returns an unsuccessful result when the constraint set is proven or
        presumed (backtrack limit) unsatisfiable.
        """
        limit = backtrack_limit if backtrack_limit is not None else self.backtrack_limit
        for (net, frame), value in constraints.items():
            if net not in self.circuit.gates:
                raise KeyError(f"unknown net {net!r} in constraints")
            if frame not in (0, 1) or value not in (0, 1):
                raise ValueError(f"bad constraint {(net, frame)} = {value}")

        comp = _Compiled(self.circuit, constraints)
        # pin assignment per frame: value arrays indexed by compiled node id
        pin: List[List[int]] = [[X] * comp.n, [X] * comp.n]
        # simulated values per frame, maintained incrementally: a decision
        # touches one (input, frame) pin, so only that pin's fanout cone in
        # that frame needs re-evaluation.
        values: List[List[int]] = [[X] * comp.n, [X] * comp.n]
        self._propagate_all(comp, pin, values)
        decisions: List[Tuple[int, int, int, bool]] = []  # (node, frame, val, flipped)
        backtracks = 0

        while True:
            status = self._check(comp, values)
            if status == 1:  # satisfied
                assignment = {
                    (comp.names[node], frame): pin[frame][node]
                    for node in range(comp.n)
                    if comp.opcodes[node] == _OP_INPUT
                    for frame in (0, 1)
                    if pin[frame][node] != X
                }
                return JustifyResult(True, assignment, backtracks)
            if status == -1:  # conflict
                changed = self._backtrack(decisions, pin)
                if changed is None:
                    return JustifyResult(False, {}, backtracks)
                for node, frame in changed:
                    self._propagate(comp, pin, values, frame, node)
                backtracks += 1
                if backtracks > limit:
                    return JustifyResult(False, {}, backtracks)
                continue
            objective = self._pick_objective(comp, values)
            decision = self._backtrace(comp, values, objective, self.guidance)
            if decision is None:
                changed = self._backtrack(decisions, pin)
                if changed is None:
                    return JustifyResult(False, {}, backtracks)
                for node, frame in changed:
                    self._propagate(comp, pin, values, frame, node)
                backtracks += 1
                if backtracks > limit:
                    return JustifyResult(False, {}, backtracks)
                continue
            node, frame, value = decision
            pin[frame][node] = value
            decisions.append((node, frame, value, False))
            self._propagate(comp, pin, values, frame, node)

    # ------------------------------------------------------------------
    @staticmethod
    def _eval_node(
        comp: _Compiled, values: List[int], pins: List[int], i: int
    ) -> int:
        """Three-valued evaluation of one compiled node."""
        op = comp.opcodes[i]
        if op == _OP_INPUT:
            return pins[i]
        fanins = comp.fanins[i]
        if op == _OP_BUF:
            return values[fanins[0]]
        if op == _OP_NOT:
            v = values[fanins[0]]
            return v if v == X else 1 - v
        if op == _OP_AND or op == _OP_NAND:
            out = 1
            for f in fanins:
                v = values[f]
                if v == 0:
                    out = 0
                    break
                if v == X:
                    out = X
            if op == _OP_NAND and out != X:
                out = 1 - out
            return out
        if op == _OP_OR or op == _OP_NOR:
            out = 0
            for f in fanins:
                v = values[f]
                if v == 1:
                    out = 1
                    break
                if v == X:
                    out = X
            if op == _OP_NOR and out != X:
                out = 1 - out
            return out
        out = 1 if op == _OP_XNOR else 0  # XOR / XNOR
        for f in fanins:
            v = values[f]
            if v == X:
                return X
            out ^= v
        return out

    @classmethod
    def _propagate_all(
        cls, comp: _Compiled, pin: List[List[int]], values: List[List[int]]
    ) -> None:
        """Full three-valued simulation of both frames (initialization)."""
        for frame in (0, 1):
            frame_values, pins = values[frame], pin[frame]
            for i in range(comp.n):
                frame_values[i] = cls._eval_node(comp, frame_values, pins, i)

    @classmethod
    def _propagate(
        cls,
        comp: _Compiled,
        pin: List[List[int]],
        values: List[List[int]],
        frame: int,
        node: int,
    ) -> None:
        """Re-evaluate downstream of ``node`` in one frame, worklist-style.

        Compiled node ids increase along the topological order, so a min-heap
        worklist pops nodes in dependency order; fanouts are enqueued only
        when a value actually changes, which keeps re-evaluation local.
        """
        frame_values, pins = values[frame], pin[frame]
        heap = [node]
        queued = {node}
        while heap:
            i = heapq.heappop(heap)
            new_value = cls._eval_node(comp, frame_values, pins, i)
            if i != node and new_value == frame_values[i]:
                continue
            frame_values[i] = new_value
            for successor in comp.fanouts[i]:
                if successor not in queued:
                    queued.add(successor)
                    heapq.heappush(heap, successor)

    @staticmethod
    def _check(comp: _Compiled, values: List[List[int]]) -> int:
        """1 = satisfied, -1 = conflict, 0 = pending."""
        pending = False
        for node, frame, required in comp.constraints:
            actual = values[frame][node]
            if actual == X:
                pending = True
            elif actual != required:
                return -1
        return 0 if pending else 1

    @staticmethod
    def _pick_objective(
        comp: _Compiled, values: List[List[int]]
    ) -> Tuple[int, int, int]:
        for node, frame, required in comp.constraints:
            if values[frame][node] == X:
                return node, frame, required
        raise AssertionError("objective requested with no pending constraint")

    @staticmethod
    def _backtrace(
        comp: _Compiled,
        values: List[List[int]],
        objective: Tuple[int, int, int],
        guidance=None,
    ) -> Optional[Tuple[int, int, int]]:
        """Walk from the objective to an unassigned input, PODEM-style."""
        node, frame, value = objective
        frame_values = values[frame]

        def pick(x_inputs: List[int], needed: int) -> int:
            """Choose among X-valued fanins (SCOAP-guided when available)."""
            if guidance is None or len(x_inputs) == 1:
                return x_inputs[0]
            return min(
                x_inputs,
                key=lambda f: guidance.controllability(comp.names[f], needed),
            )

        guard = 0
        while True:
            guard += 1
            if guard > comp.n + 1:
                return None
            op = comp.opcodes[node]
            if op == _OP_INPUT:
                return (node, frame, value) if frame_values[node] == X else None
            fanins = comp.fanins[node]
            if op == _OP_BUF:
                node = fanins[0]
                continue
            if op == _OP_NOT:
                node, value = fanins[0], 1 - value
                continue
            x_inputs = [f for f in fanins if frame_values[f] == X]
            if not x_inputs:
                return None
            controlling = _OP_CONTROLLING.get(op)
            if controlling is not None:
                inverted = op in _OP_INVERTING
                controlled_output = (1 - controlling) if inverted else controlling
                needed = controlling if value == controlled_output else 1 - controlling
                node, value = pick(x_inputs, needed), needed
                continue
            # XOR family: choose an X input; required value assumes the other
            # X inputs resolve to 0 (heuristic; conflicts self-correct).
            chosen = x_inputs[0]
            parity = 1 if op == _OP_XNOR else 0
            for f in fanins:
                v = frame_values[f]
                if v in (0, 1) and f != chosen:
                    parity ^= v
            node, value = chosen, value ^ parity
            continue

    @staticmethod
    def _backtrack(
        decisions: List[Tuple[int, int, int, bool]], pin: List[List[int]]
    ) -> Optional[List[Tuple[int, int]]]:
        """Flip the most recent untried decision; pop exhausted ones.

        Returns the (node, frame) pins whose values changed so the caller
        can re-propagate, or ``None`` when the search space is exhausted.
        """
        changed: List[Tuple[int, int]] = []
        while decisions:
            node, frame, value, flipped = decisions.pop()
            pin[frame][node] = X
            changed.append((node, frame))
            if not flipped:
                pin[frame][node] = 1 - value
                decisions.append((node, frame, 1 - value, True))
                return changed
        return None  # exhausted: caller stops, stale values are irrelevant
