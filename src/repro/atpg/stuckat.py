"""Single-frame PODEM for stuck-at faults (5-valued D-algebra).

The logic-domain baseline the paper contrasts with (Sections B, C): classic
PODEM [Goel 1981] — decisions on primary inputs only, objectives chosen from
fault activation and the D-frontier, implications by full 5-valued
simulation of the fault machine.  Used for:

* the logic-only diagnosis baseline's pattern generation,
* fault-resolution studies (maximal resolution in the logic domain),
* launch-vector construction for transition-fault tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..circuits.library import CONTROLLING_VALUE, GateType, INVERTING
from ..circuits.netlist import Circuit
from ..logic.faults import StuckAtFault
from ..rng import RngLike, coerce_rng
from .values import D, DB, ONE, XX, ZERO, d_and, d_not, d_or, d_xor

__all__ = ["StuckAtAtpg", "StuckAtTest"]


@dataclass
class StuckAtTest:
    """A test vector detecting a stuck-at fault (values over PIs)."""

    fault: StuckAtFault
    vector: List[int]


def _eval_d(gate_type: GateType, inputs: List[int]) -> int:
    if gate_type in (GateType.BUF, GateType.OUTPUT, GateType.DFF):
        return inputs[0]
    if gate_type is GateType.NOT:
        return d_not(inputs[0])
    if gate_type in (GateType.AND, GateType.NAND):
        out = inputs[0]
        for value in inputs[1:]:
            out = d_and(out, value)
        return d_not(out) if gate_type is GateType.NAND else out
    if gate_type in (GateType.OR, GateType.NOR):
        out = inputs[0]
        for value in inputs[1:]:
            out = d_or(out, value)
        return d_not(out) if gate_type is GateType.NOR else out
    if gate_type in (GateType.XOR, GateType.XNOR):
        out = inputs[0]
        for value in inputs[1:]:
            out = d_xor(out, value)
        return d_not(out) if gate_type is GateType.XNOR else out
    raise ValueError(f"unsupported gate type {gate_type}")


class StuckAtAtpg:
    """PODEM test generator for one circuit."""

    def __init__(self, circuit: Circuit, backtrack_limit: int = 400) -> None:
        self.circuit = circuit
        self.backtrack_limit = backtrack_limit

    # ------------------------------------------------------------------
    def generate(
        self, fault: StuckAtFault, rng: Optional[RngLike] = None
    ) -> Optional[StuckAtTest]:
        """Find a vector detecting ``fault``, or ``None`` (untestable/limit)."""
        rng = coerce_rng(rng)
        assignment: Dict[str, int] = {}
        decisions: List[Tuple[str, int, bool]] = []
        backtracks = 0

        while True:
            values = self._imply(assignment, fault)
            state = self._status(values, fault)
            if state == "detected":
                vector = [
                    assignment.get(net, rng.randint(0, 1))
                    for net in self.circuit.inputs
                ]
                return StuckAtTest(fault, vector)
            if state == "conflict":
                if not self._backtrack(decisions, assignment):
                    return None
                backtracks += 1
                if backtracks > self.backtrack_limit:
                    return None
                continue
            objective = self._objective(values, fault)
            if objective is None:
                if not self._backtrack(decisions, assignment):
                    return None
                backtracks += 1
                if backtracks > self.backtrack_limit:
                    return None
                continue
            decision = self._backtrace(objective, values)
            if decision is None:
                if not self._backtrack(decisions, assignment):
                    return None
                backtracks += 1
                if backtracks > self.backtrack_limit:
                    return None
                continue
            net, value = decision
            assignment[net] = value
            decisions.append((net, value, False))

    # ------------------------------------------------------------------
    def _imply(self, assignment: Dict[str, int], fault: StuckAtFault) -> Dict[str, int]:
        values: Dict[str, int] = {}
        for name in self.circuit.topological_order:
            gate = self.circuit.gates[name]
            if gate.gate_type is GateType.INPUT:
                value = assignment.get(name, XX)
                value = {0: ZERO, 1: ONE, XX: XX}[value] if value in (0, 1, XX) else XX
            else:
                value = _eval_d(
                    gate.gate_type, [values[f] for f in gate.fanins]
                )
            if name == fault.net:
                value = self._faulty_value(value, fault)
            values[name] = value
        return values

    @staticmethod
    def _faulty_value(good: int, fault: StuckAtFault) -> int:
        """Inject the fault: composite value given the good-machine value."""
        if good == XX:
            return XX
        good_bit = {ZERO: 0, ONE: 1, D: 1, DB: 0}[good]
        if good_bit == fault.value:
            return ZERO if fault.value == 0 else ONE  # fault not activated
        return D if good_bit == 1 else DB

    def _status(self, values: Dict[str, int], fault: StuckAtFault) -> str:
        if any(values[o] in (D, DB) for o in self.circuit.outputs):
            return "detected"
        site = values[fault.net]
        if site in (ZERO, ONE):
            # Fault not activated and site fully determined: conflict.
            return "conflict"
        if site in (D, DB) and not self._d_frontier(values):
            # Activated but no gate can still propagate: conflict.
            if not any(values[o] in (D, DB) for o in self.circuit.outputs):
                return "conflict"
        return "pending"

    def _d_frontier(self, values: Dict[str, int]) -> List[str]:
        frontier = []
        for name in self.circuit.topological_order:
            gate = self.circuit.gates[name]
            if gate.gate_type is GateType.INPUT:
                continue
            if values[name] == XX and any(
                values[f] in (D, DB) for f in gate.fanins
            ):
                frontier.append(name)
        return frontier

    def _objective(
        self, values: Dict[str, int], fault: StuckAtFault
    ) -> Optional[Tuple[str, int]]:
        site = values[fault.net]
        if site == XX:
            # Activate: drive the site to the opposite of the stuck value.
            return fault.net, 1 - fault.value
        frontier = self._d_frontier(values)
        if not frontier:
            return None
        gate = self.circuit.gates[frontier[0]]
        controlling = CONTROLLING_VALUE[gate.gate_type]
        for fanin in gate.fanins:
            if values[fanin] == XX:
                if controlling is not None:
                    return fanin, 1 - controlling
                return fanin, 0
        return None

    def _backtrace(
        self, objective: Tuple[str, int], values: Dict[str, int]
    ) -> Optional[Tuple[str, int]]:
        net, value = objective
        guard = 0
        while True:
            guard += 1
            if guard > len(self.circuit.gates) + 1:
                return None
            gate = self.circuit.gates[net]
            if gate.gate_type is GateType.INPUT:
                return (net, value) if values[net] == XX else None
            if gate.gate_type in (GateType.BUF, GateType.OUTPUT):
                net = gate.fanins[0]
                continue
            if gate.gate_type is GateType.NOT:
                net, value = gate.fanins[0], 1 - value
                continue
            x_inputs = [f for f in gate.fanins if values[f] == XX]
            if not x_inputs:
                return None
            controlling = CONTROLLING_VALUE[gate.gate_type]
            inverted = gate.gate_type in INVERTING
            if controlling is not None:
                controlled_output = (1 - controlling) if inverted else controlling
                if value == controlled_output:
                    net, value = x_inputs[0], controlling
                else:
                    net, value = x_inputs[0], 1 - controlling
                continue
            parity = 1 if gate.gate_type is GateType.XNOR else 0
            for fanin in gate.fanins:
                if values[fanin] in (ZERO, ONE) and fanin != x_inputs[0]:
                    parity ^= 1 if values[fanin] == ONE else 0
            net, value = x_inputs[0], value ^ parity
            continue

    @staticmethod
    def _backtrack(
        decisions: List[Tuple[str, int, bool]], assignment: Dict[str, int]
    ) -> bool:
        while decisions:
            net, value, flipped = decisions.pop()
            del assignment[net]
            if not flipped:
                assignment[net] = 1 - value
                decisions.append((net, 1 - value, True))
                return True
        return False
