"""Test generation: two-frame justification, path-delay ATPG, stuck-at PODEM."""

from .values import ZERO, ONE, XX, D, DB
from .justify import Justifier, JustifyResult
from .pathdelay import PathTest, build_path_constraints, generate_test_for_path
from .stuckat import StuckAtAtpg, StuckAtTest
from .patterns import PatternPairSet, generate_path_tests, random_pattern_pairs
from .fill import FillResult, optimize_fill
from .broadside import (
    BroadsideModel,
    BroadsideTest,
    broadside_expand,
    generate_broadside_test,
)

__all__ = [
    "ZERO",
    "ONE",
    "XX",
    "D",
    "DB",
    "Justifier",
    "JustifyResult",
    "PathTest",
    "build_path_constraints",
    "generate_test_for_path",
    "StuckAtAtpg",
    "StuckAtTest",
    "PatternPairSet",
    "generate_path_tests",
    "random_pattern_pairs",
    "FillResult",
    "optimize_fill",
    "BroadsideModel",
    "BroadsideTest",
    "broadside_expand",
    "generate_broadside_test",
]
