"""Path delay fault ATPG (paper Sections G, H-4).

Builds two-frame value constraints that sensitize a given path under the
robust or non-robust criterion, hands them to the
:class:`~repro.atpg.justify.Justifier`, random-fills the free inputs and
verifies the achieved sensitization class on the settled logic values.

Constraint semantics (see :mod:`repro.paths.sensitization` for discussion):

* every on-path net is constrained to its transition values ``(v1, v2)``;
  the polarity flips through inverting gates and through XOR-family gates
  according to the chosen side-input phase,
* off-path inputs of a gate with controlling value ``c``:

  - on-path input transitioning **to** ``c``  -> off inputs ``v2 = nc``
    (robust and non-robust coincide, the Lin-Reddy ``X -> nc`` rule),
  - on-path input transitioning to ``nc``     -> robust: steady ``(nc, nc)``;
    non-robust: ``v2 = nc`` only,

* off-path inputs of XOR-family gates: steady ``(s, s)``; both phases ``s``
  are tried, flipping the downstream polarity accordingly.

The generator mirrors the paper's setup: conventional (untimed) path-delay
ATPG — "tests are derived without considering timing" — robust preferred,
non-robust as fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..circuits.library import CONTROLLING_VALUE, GateType, INVERTING
from ..circuits.netlist import Circuit
from ..rng import RngLike, coerce_rng
from ..paths.model import Path
from ..paths.sensitization import Sensitization, classify_path_sensitization
from .justify import Justifier, Key

__all__ = ["PathTest", "build_path_constraints", "generate_test_for_path"]


@dataclass
class PathTest:
    """A generated two-vector test for a path."""

    path: Path
    v1: List[int]
    v2: List[int]
    rising_at_input: bool
    achieved: Sensitization

    def as_pair(self):
        import numpy as np

        return np.asarray(self.v1), np.asarray(self.v2)


def build_path_constraints(
    circuit: Circuit,
    path: Path,
    rising_at_input: bool,
    criterion: Sensitization = Sensitization.ROBUST,
    max_variants: int = 4,
) -> Iterator[Dict[Key, int]]:
    """Yield constraint-set variants (one per XOR side-phase combination).

    Each yielded dict maps ``(net, frame)`` to a required settled value.
    Variants differ in the steady phase chosen for XOR-family side inputs;
    at most ``max_variants`` are produced (phase combinations beyond that
    are pruned breadth-first).
    """
    if criterion not in (Sensitization.ROBUST, Sensitization.NON_ROBUST):
        raise ValueError("ATPG criteria are ROBUST or NON_ROBUST")

    # Each partial state: (constraints so far, current on-path final value).
    # Adding a requirement that contradicts an existing one kills the state:
    # the path re-converges onto itself in a statically unsensitizable way
    # (a structurally false path under this criterion/polarity).
    first = path.nets[0]
    initial_final = 1 if rising_at_input else 0
    states: List[Tuple[Dict[Key, int], int]] = [
        (
            {(first, 0): 1 - initial_final, (first, 1): initial_final},
            initial_final,
        )
    ]

    for on_net, sink in zip(path.nets, path.nets[1:]):
        gate = circuit.gates[sink]
        off_inputs = [f for f in gate.fanins if f != on_net]
        next_states: List[Tuple[Dict[Key, int], int]] = []
        for constraints, on_final in states:
            if gate.gate_type in (GateType.BUF, GateType.OUTPUT, GateType.NOT):
                out_final = (
                    1 - on_final if gate.gate_type is GateType.NOT else on_final
                )
                with_on = _with_on_path(dict(constraints), sink, out_final)
                if with_on is not None:
                    next_states.append((with_on, out_final))
                continue
            controlling = CONTROLLING_VALUE[gate.gate_type]
            if controlling is not None:
                inverted = gate.gate_type in INVERTING
                non_controlling = 1 - controlling
                updated = dict(constraints)
                feasible = True
                required = [(off, 1, non_controlling) for off in off_inputs]
                if on_final != controlling and criterion is Sensitization.ROBUST:
                    required += [(off, 0, non_controlling) for off in off_inputs]
                for off, frame, value in required:
                    if not _try_add(updated, (off, frame), value):
                        feasible = False
                        break
                if not feasible:
                    continue
                # With all off inputs pinned non-controlling, the gate
                # reduces to an (inverted) buffer of the on-path input.
                out_final = on_final if not inverted else 1 - on_final
                with_on = _with_on_path(updated, sink, out_final)
                if with_on is not None:
                    next_states.append((with_on, out_final))
                continue
            # XOR family: branch on the steady side phase.
            base_inverting = gate.gate_type is GateType.XNOR
            for phase in (0, 1):
                updated = dict(constraints)
                parity = 1 if base_inverting else 0
                feasible = True
                for off in off_inputs:
                    if not _try_add(updated, (off, 0), phase) or not _try_add(
                        updated, (off, 1), phase
                    ):
                        feasible = False
                        break
                    parity ^= phase
                if not feasible:
                    continue
                out_final = on_final ^ parity
                with_on = _with_on_path(updated, sink, out_final)
                if with_on is not None:
                    next_states.append((with_on, out_final))
        # prune breadth-first to bound the variant explosion
        states = next_states[:max_variants]
        if not states:
            return
    for constraints, _ in states:
        yield constraints


def _try_add(constraints: Dict[Key, int], key: Key, value: int) -> bool:
    """Add a requirement; False when it contradicts an existing one."""
    existing = constraints.get(key)
    if existing is not None and existing != value:
        return False
    constraints[key] = value
    return True


def _with_on_path(
    constraints: Dict[Key, int], net: str, final: int
) -> Optional[Dict[Key, int]]:
    updated = dict(constraints)
    if not _try_add(updated, (net, 0), 1 - final):
        return None
    if not _try_add(updated, (net, 1), final):
        return None
    return updated


def generate_test_for_path(
    circuit: Circuit,
    path: Path,
    criterion: Sensitization = Sensitization.ROBUST,
    rng: Optional[RngLike] = None,
    justifier: Optional[Justifier] = None,
    fill_attempts: int = 4,
    backtrack_limit: Optional[int] = None,
) -> Optional[PathTest]:
    """Generate a two-vector test sensitizing ``path``, or ``None``.

    Tries both launch polarities and every XOR side-phase variant under the
    requested ``criterion``.  Free primary inputs are filled randomly; the
    settled values are then classified and the test accepted only if the
    achieved sensitization is at least ``criterion`` (random fill cannot
    break the constraints, but the check also guards the constraint builder
    itself — this is the "false-path-aware" filter of Section H-4).
    """
    rng = coerce_rng(rng)
    justifier = justifier or Justifier(circuit)
    for rising in (True, False):
        for constraints in build_path_constraints(circuit, path, rising, criterion):
            result = justifier.justify(constraints, backtrack_limit=backtrack_limit)
            if not result.success:
                continue
            # Quiet fill first (highest diagnostic quality), then random
            # refills in case the quiet assignment trips the classifier.
            fills = ["quiet"] + ["random"] * max(fill_attempts - 1, 0)
            for fill in fills:
                v1, v2 = result.vectors(circuit, rng, fill=fill)
                val1 = circuit.evaluate(dict(zip(circuit.inputs, v1)))
                val2 = circuit.evaluate(dict(zip(circuit.inputs, v2)))
                achieved = classify_path_sensitization(circuit, path, val1, val2)
                if achieved.at_least(criterion):
                    return PathTest(path, v1, v2, rising, achieved)
    return None
