"""Broadside (launch-on-capture) delay test generation.

The main flow assumes *skewed-load* scan testing: both vectors of a delay
test are fully controllable (the second vector is shifted in).  Production
at-speed testing more commonly uses **broadside** (launch-on-capture)
patterns: only the first vector is scanned in; the second vector's state
bits are whatever the circuit *functionally captures* — ``v2[ppi] =
F_next(v1)`` — which shrinks the reachable two-vector space and makes some
paths untestable.

Implementation by time-frame expansion: build a combinational model with
two copies of the circuit, frame 1's pseudo-primary-inputs driven by frame
0's next-state functions (per ``circuit.scan_pairs``).  Path constraints
for the targeted (frame-1) path map onto the expanded netlist, and the
ordinary two-frame justifier runs on it single-frame.  The resulting test
is checked end to end: sensitization class on the settled values *and* the
functional-capture consistency ``v2[ppi] == F_next(v1)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..circuits.library import GateType
from ..circuits.netlist import Circuit
from ..rng import RngLike, coerce_rng
from ..paths.model import Path
from ..paths.sensitization import Sensitization, classify_path_sensitization
from .justify import Justifier
from .pathdelay import build_path_constraints

__all__ = ["BroadsideModel", "BroadsideTest", "broadside_expand", "generate_broadside_test"]

_F0, _F1 = "f0:", "f1:"


@dataclass
class BroadsideModel:
    """Two-time-frame combinational expansion of a full-scan circuit."""

    original: Circuit
    expanded: Circuit

    def frame0(self, net: str) -> str:
        return _F0 + net

    def frame1(self, net: str) -> str:
        return _F1 + net


@dataclass
class BroadsideTest:
    """A launch-on-capture test: ``v2``'s state bits are captured, not set."""

    path: Path
    v1: List[int]
    v2: List[int]
    achieved: Sensitization


def broadside_expand(circuit: Circuit) -> BroadsideModel:
    """Build the two-frame expansion.

    Frame-0 and frame-1 copies share nothing except that each scan pair's
    frame-1 state input is a buffer of the frame-0 next-state net.  Primary
    (non-state) inputs remain free in both frames, matching testers that
    can change PI values between launch and capture.
    """
    if not circuit.scan_pairs:
        raise ValueError(
            "circuit has no scan pairs; broadside needs the full-scan view "
            "of a sequential circuit (see Circuit.unroll_scan)"
        )
    captured = {ppi: ppo for ppi, ppo in circuit.scan_pairs}
    expanded = Circuit(circuit.name + "_broadside")

    for name in circuit.topological_order:
        gate = circuit.gates[name]
        if gate.gate_type is GateType.INPUT:
            expanded.add_input(_F0 + name)
        else:
            expanded.add_gate(
                _F0 + name, gate.gate_type, [_F0 + f for f in gate.fanins]
            )
    for name in circuit.topological_order:
        gate = circuit.gates[name]
        if gate.gate_type is GateType.INPUT:
            if name in captured:
                expanded.add_gate(_F1 + name, GateType.BUF, [_F0 + captured[name]])
            else:
                expanded.add_input(_F1 + name)
        else:
            expanded.add_gate(
                _F1 + name, gate.gate_type, [_F1 + f for f in gate.fanins]
            )
    for output in circuit.outputs:
        expanded.mark_output(_F1 + output)
    return BroadsideModel(circuit, expanded.freeze())


def generate_broadside_test(
    circuit: Circuit,
    path: Path,
    criterion: Sensitization = Sensitization.NON_ROBUST,
    model: Optional[BroadsideModel] = None,
    rng: Optional[RngLike] = None,
    justifier: Optional[Justifier] = None,
    backtrack_limit: int = 150,
) -> Optional[BroadsideTest]:
    """A launch-on-capture two-vector test sensitizing ``path``, or ``None``.

    Constraints are built exactly as for skewed-load
    (:func:`repro.atpg.pathdelay.build_path_constraints`), then re-keyed
    onto the expanded netlist — frame 0 constraints onto the ``f0:`` copy,
    frame 1 onto ``f1:`` — and justified *single-frame* there, so the
    capture relation is enforced structurally rather than by search.
    """
    rng = coerce_rng(rng)
    if model is None:
        model = broadside_expand(circuit)
    expanded = model.expanded
    justifier = justifier or Justifier(expanded)
    captured = {ppi for ppi, _ppo in circuit.scan_pairs}

    for rising in (True, False):
        for constraints in build_path_constraints(circuit, path, rising, criterion):
            mapped: Dict[Tuple[str, int], int] = {}
            feasible = True
            for (net, frame), value in constraints.items():
                prefix = _F0 if frame == 0 else _F1
                key = (prefix + net, 0)
                existing = mapped.get(key)
                if existing is not None and existing != value:
                    feasible = False
                    break
                mapped[key] = value
            if not feasible:
                continue
            result = justifier.justify(mapped, backtrack_limit=backtrack_limit)
            if not result.success:
                continue

            # materialize v1 over all original inputs (quiet-fill free PIs,
            # shared by both frames where the tester would hold them)
            v1: List[int] = []
            v2_free: Dict[str, int] = {}
            for net in circuit.inputs:
                bit0 = result.assignment.get((_F0 + net, 0))
                bit1 = result.assignment.get((_F1 + net, 0))
                if bit0 is None:
                    bit0 = bit1 if (bit1 is not None and net not in captured) else rng.randint(0, 1)
                v1.append(bit0)
                if net not in captured:
                    v2_free[net] = bit1 if bit1 is not None else bit0
            # capture: v2 state bits come from frame-0 next-state values
            settled1 = circuit.evaluate(dict(zip(circuit.inputs, v1)))
            next_state = {ppi: settled1[ppo] for ppi, ppo in circuit.scan_pairs}
            v2 = [
                next_state[net] if net in captured else v2_free[net]
                for net in circuit.inputs
            ]

            val1 = settled1
            val2 = circuit.evaluate(dict(zip(circuit.inputs, v2)))
            achieved = classify_path_sensitization(circuit, path, val1, val2)
            if achieved.at_least(criterion):
                return BroadsideTest(path, v1, v2, achieved)
    return None
