"""Delay-maximizing fill of unconstrained inputs (paper Section G).

    "Another possibility could be to use Genetic Algorithm based ATPG
    techniques that can generate tests resulting in longer path delays
    based on a fitness function [11].  After assigning the mandatory values
    to sensitize a given path, usually there are still many unspecified
    values at the primary inputs."

This module implements that idea as a small (mu + lambda) evolutionary
search over the free input bits of a justified path test:

* **genome** — one bit per free (input, frame) position,
* **fitness** — the *defect visibility* of the test: the mean increase of
  the targeted output's settle time when a canonical delta is added on the
  tested path.  (In the paper's setting fill changes path delay through
  slew/crosstalk; our library's pin-to-pin delays are input-independent, so
  the faithful objective is the one fill still controls — how much of the
  fault's extra delay actually reaches the observation point instead of
  being masked by longer incidental paths the fill sensitizes.  Visibility
  of ``delta`` is at most ``delta``; a fill reaching it makes the tested
  path dominate the output arrival for every sample.)
* **feasibility** — candidates that break the required sensitization class
  of the targeted path are discarded (the mandatory values are never
  touched, but fill interactions can still change off-path side values).

The ``pattern_quality_study`` example and the extension bench measure the
effect end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..circuits.netlist import Circuit
from ..rng import RngLike, coerce_rng
from ..paths.sensitization import Sensitization, classify_path_sensitization
from ..timing.dynamic import simulate_transition
from ..timing.instance import CircuitTiming
from .pathdelay import PathTest

__all__ = ["FillResult", "optimize_fill"]


@dataclass
class FillResult:
    """Outcome of the fill optimization.

    ``baseline_visibility``/``optimized_visibility`` are mean delay units of
    a canonical ``delta`` on the tested path that reach the observed output
    (at most ``delta``; higher = the tested path dominates the output).
    """

    test: PathTest
    baseline_visibility: float
    optimized_visibility: float
    delta: float
    generations_run: int

    @property
    def improvement(self) -> float:
        """Absolute visibility gain (delay units)."""
        return self.optimized_visibility - self.baseline_visibility


def _defect_visibility(
    timing: CircuitTiming,
    v1: List[int],
    v2: List[int],
    target: str,
    probe: Dict[int, float],
) -> float:
    """Mean settle increase at ``target`` caused by the probe delta."""
    base = simulate_transition(timing, np.asarray(v1), np.asarray(v2))
    if not base.transitioned(target):
        return float("-inf")
    from ..timing.dynamic import resimulate_with_extra

    shifted = resimulate_with_extra(base, probe)
    return float((shifted.stable[target] - base.stable[target]).mean())


def _feasible(
    circuit: Circuit,
    test_path,
    v1: List[int],
    v2: List[int],
    criterion: Sensitization,
) -> bool:
    val1 = circuit.evaluate(dict(zip(circuit.inputs, v1)))
    val2 = circuit.evaluate(dict(zip(circuit.inputs, v2)))
    return classify_path_sensitization(circuit, test_path, val1, val2).at_least(
        criterion
    )


def optimize_fill(
    timing: CircuitTiming,
    test: PathTest,
    criterion: Sensitization = Sensitization.NON_ROBUST,
    population: int = 8,
    generations: int = 6,
    mutation_rate: float = 0.15,
    delta: float = 1.0,
    rng: Optional[RngLike] = None,
) -> FillResult:
    """Evolve the fill of ``test`` to maximize defect visibility.

    The mandatory bits are those whose flip would break the sensitization;
    rather than re-deriving them from the justifier, feasibility is checked
    behaviourally on each candidate — simpler, and it also exploits fills
    that happen to keep the path sensitized through different side values.
    ``delta`` is the canonical probe size (default: one nominal NAND
    delay).  Returns the best feasible test found (possibly the input).
    """
    if population < 2 or generations < 1:
        raise ValueError("population >= 2 and generations >= 1 required")
    if delta <= 0:
        raise ValueError("delta must be positive")
    rng = coerce_rng(rng)
    circuit = timing.circuit
    target = test.path.nets[-1]
    width = len(circuit.inputs)
    first_edge = test.path.edges(circuit)[0]
    probe = {timing.edge_index[first_edge]: delta}

    def genome_of(v1: List[int], v2: List[int]) -> List[int]:
        return list(v1) + list(v2)

    def vectors_of(genome: List[int]) -> Tuple[List[int], List[int]]:
        return genome[:width], genome[width:]

    seed_genome = genome_of(test.v1, test.v2)
    baseline = _defect_visibility(timing, test.v1, test.v2, target, probe)

    scored: List[Tuple[float, List[int]]] = [(baseline, seed_genome)]
    pool: List[List[int]] = [seed_genome]
    while len(pool) < population:
        candidate = list(seed_genome)
        for index in range(len(candidate)):
            if rng.random() < mutation_rate:
                candidate[index] ^= 1
        pool.append(candidate)

    generations_run = 0
    for _generation in range(generations):
        generations_run += 1
        for genome in pool:
            v1, v2 = vectors_of(genome)
            if not _feasible(circuit, test.path, v1, v2, criterion):
                continue
            fitness = _defect_visibility(timing, v1, v2, target, probe)
            scored.append((fitness, genome))
        scored.sort(key=lambda item: -item[0])
        del scored[population:]
        # next generation: mutations and uniform crossovers of survivors
        pool = []
        while len(pool) < population:
            if len(scored) >= 2 and rng.random() < 0.5:
                a = rng.choice(scored)[1]
                b = rng.choice(scored)[1]
                child = [x if rng.random() < 0.5 else y for x, y in zip(a, b)]
            else:
                child = list(rng.choice(scored)[1])
            for index in range(len(child)):
                if rng.random() < mutation_rate:
                    child[index] ^= 1
            pool.append(child)

    best_fitness, best_genome = scored[0]
    v1, v2 = vectors_of(best_genome)
    val1 = circuit.evaluate(dict(zip(circuit.inputs, v1)))
    val2 = circuit.evaluate(dict(zip(circuit.inputs, v2)))
    achieved = classify_path_sensitization(circuit, test.path, val1, val2)
    optimized = PathTest(test.path, v1, v2, test.rising_at_input, achieved)
    return FillResult(
        test=optimized,
        baseline_visibility=baseline,
        optimized_visibility=best_fitness,
        delta=delta,
        generations_run=generations_run,
    )
