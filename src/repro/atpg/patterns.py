"""Pattern-set containers and the diagnostic pattern-generation flow.

:class:`PatternPairSet` is the two-vector test-set object every downstream
tool consumes (dynamic simulation, dictionary construction, defect
simulation).  :func:`generate_path_tests` implements the paper's H-4 recipe:

    "For the injected fault and circuit instance, we find a set of 'longest'
    paths through the fault site and generate path delay tests for them ...
    robust or non-robust patterns derived without considering timing."

plus a random two-vector fallback so a usable pattern set always exists
(mirroring the paper's observation that pattern quality bounds diagnosis
quality — the fallback produces deliberately mediocre patterns and is used
by the pattern-quality ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuits.netlist import Circuit, Edge
from ..rng import RngLike, coerce_rng
from ..paths.enumerate import (
    k_longest_paths_through,
    longest_delay_tables,
    sample_path_through,
)
from ..paths.model import Path
from ..paths.sensitization import Sensitization
from ..timing.instance import CircuitTiming
from .justify import Justifier
from .pathdelay import PathTest, generate_test_for_path

__all__ = ["PatternPairSet", "generate_path_tests", "random_pattern_pairs"]


@dataclass
class PatternPairSet:
    """An ordered set of two-vector delay tests.

    ``pairs`` has shape ``(n_tests, 2, n_inputs)``; ``sources`` records per
    test where it came from (the targeted path, or ``None`` for random
    fill-ins).  Duplicate vector pairs are rejected at ``append`` time.
    """

    circuit: Circuit
    pairs: np.ndarray = None  # type: ignore[assignment]
    sources: List[Optional[Path]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.pairs is None:
            self.pairs = np.zeros((0, 2, len(self.circuit.inputs)), dtype=np.int8)
        self.pairs = np.asarray(self.pairs, dtype=np.int8)
        if self.pairs.ndim != 3 or self.pairs.shape[1] != 2:
            raise ValueError("pairs must have shape (n, 2, n_inputs)")
        if len(self.sources) != self.pairs.shape[0]:
            self.sources = list(self.sources) + [None] * (
                self.pairs.shape[0] - len(self.sources)
            )

    def __len__(self) -> int:
        return self.pairs.shape[0]

    def __iter__(self):
        for index in range(len(self)):
            yield self.pair(index)

    def pair(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        return self.pairs[index, 0], self.pairs[index, 1]

    def append(self, v1: Sequence[int], v2: Sequence[int], source: Optional[Path] = None) -> bool:
        """Add a test; returns False (and skips) when it is a duplicate."""
        candidate = np.asarray([v1, v2], dtype=np.int8).reshape(1, 2, -1)
        if candidate.shape[2] != len(self.circuit.inputs):
            raise ValueError("vector width does not match the circuit inputs")
        if len(self) and (self.pairs == candidate).all(axis=(1, 2)).any():
            return False
        self.pairs = np.concatenate([self.pairs, candidate], axis=0)
        self.sources.append(source)
        return True

    def target_observations(self) -> List[Tuple[int, str]]:
        """(pattern index, output net) endpoints of the targeted paths.

        These are the observation points diagnosis clock calibration should
        be tightened against; random fill-in patterns contribute none.
        """
        return [
            (index, source.nets[-1])
            for index, source in enumerate(self.sources)
            if source is not None
        ]

    def extend_random(self, count: int, rng: np.random.Generator) -> int:
        """Append ``count`` random two-vector tests; returns how many stuck."""
        added = 0
        guard = 0
        while added < count and guard < 20 * count + 20:
            guard += 1
            v1 = rng.integers(0, 2, len(self.circuit.inputs))
            v2 = rng.integers(0, 2, len(self.circuit.inputs))
            if self.append(v1, v2):
                added += 1
        return added


def generate_path_tests(
    timing: CircuitTiming,
    site: Union[Edge, str],
    n_paths: int = 10,
    criterion: Sensitization = Sensitization.ROBUST,
    rng_seed: int = 0,
    pad_random: int = 0,
    justifier: Optional[Justifier] = None,
    rng: Optional[RngLike] = None,
) -> Tuple[PatternPairSet, List[PathTest]]:
    """Pattern set for the ``n_paths`` longest paths through ``site``.

    Per path: try the requested criterion first, fall back to non-robust
    (paper: "robust or non-robust patterns").  Untestable (false) paths are
    skipped — the false-path-aware selection of [17].  ``pad_random`` extra
    random pairs can be appended (used by ablations, not the main flow).

    ``rng`` threads an explicit stream through the search — pass
    ``space.child_rng(...)`` for parallel-safe generation; the default is
    the legacy ``CompatRandom(rng_seed)`` stream (bit-identical to the
    historical behavior).
    """
    circuit = timing.circuit
    pad_rng = (
        rng if isinstance(rng, np.random.Generator)
        else np.random.default_rng(rng_seed)
    )
    rng = coerce_rng(rng, rng_seed)
    justifier = justifier or Justifier(circuit)
    pattern_set = PatternPairSet(circuit)
    tests: List[PathTest] = []
    attempted = set()

    def try_path(path: Path) -> None:
        # Cheap robust attempt first, a somewhat deeper non-robust fallback:
        # robust constraint sets on false-ish paths are usually UNSAT and
        # burn the whole backtrack budget, so keep that budget small.
        if path.nets in attempted:
            return
        attempted.add(path.nets)
        test = generate_test_for_path(
            circuit, path, criterion=criterion, rng=rng, justifier=justifier,
            backtrack_limit=30,
        )
        if test is None and criterion is Sensitization.ROBUST:
            test = generate_test_for_path(
                circuit,
                path,
                criterion=Sensitization.NON_ROBUST,
                rng=rng,
                justifier=justifier,
                backtrack_limit=80,
            )
        if test is not None and pattern_set.append(test.v1, test.v2, source=path):
            tests.append(test)

    # Phase 1: the longest paths through the site are frequently false
    # (untestable) — over-fetch exact candidates and keep what tests.
    for path in k_longest_paths_through(timing, site, k=max(2 * n_paths, 10)):
        if len(tests) >= n_paths:
            break
        try_path(path)

    # Phase 2: randomized longest-biased walks; the bias decays so repeated
    # failures fall back toward shorter, easier-to-sensitize paths.  This is
    # the practical realization of H-4's "find a set of longest [testable]
    # paths through the fault site".
    if len(tests) < n_paths:
        tables = longest_delay_tables(timing)
        max_attempts = 12 * n_paths
        for attempt in range(max_attempts):
            if len(tests) >= n_paths:
                break
            bias = max(0.0, 0.9 * (1.0 - attempt / max_attempts))
            path = sample_path_through(timing, site, rng, bias=bias, tables=tables)
            try_path(path)

    if pad_random:
        pattern_set.extend_random(pad_random, pad_rng)
    return pattern_set, tests


def random_pattern_pairs(
    circuit: Circuit, count: int, seed: int = 0,
    rng: Optional[np.random.Generator] = None,
) -> PatternPairSet:
    """A purely random two-vector pattern set (baseline / ablation)."""
    pattern_set = PatternPairSet(circuit)
    pattern_set.extend_random(count, rng or np.random.default_rng(seed))
    return pattern_set
