"""Value algebras shared by the ATPG engines.

Two algebras are used:

* **Two-frame ternary** — each net carries a pair of settled values, one per
  test vector, each in {0, 1, X}.  The path-delay ATPG justifies constraint
  sets expressed in this algebra (:mod:`repro.atpg.justify`).
* **Five-valued D-algebra** — {0, 1, X, D, DB} for the single-frame stuck-at
  PODEM (:mod:`repro.atpg.stuckat`); ``D`` means good-1/faulty-0 and ``DB``
  the reverse.
"""

from __future__ import annotations


__all__ = ["ZERO", "ONE", "XX", "D", "DB", "d_and", "d_or", "d_not", "d_xor"]

ZERO, ONE, XX, D, DB = 0, 1, 2, 3, 4

#: good-machine / faulty-machine projections of each 5-valued literal.
_GOOD = {ZERO: 0, ONE: 1, XX: 2, D: 1, DB: 0}
_FAULTY = {ZERO: 0, ONE: 1, XX: 2, D: 0, DB: 1}


def _combine(good: int, faulty: int) -> int:
    if good == 2 or faulty == 2:
        return XX
    if good == faulty:
        return ONE if good == 1 else ZERO
    return D if good == 1 else DB


def _t_and(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    if a == 2 or b == 2:
        return 2
    return 1


def _t_or(a: int, b: int) -> int:
    if a == 1 or b == 1:
        return 1
    if a == 2 or b == 2:
        return 2
    return 0


def _t_xor(a: int, b: int) -> int:
    if a == 2 or b == 2:
        return 2
    return a ^ b


def d_and(a: int, b: int) -> int:
    """5-valued AND: componentwise on (good, faulty) projections."""
    return _combine(_t_and(_GOOD[a], _GOOD[b]), _t_and(_FAULTY[a], _FAULTY[b]))


def d_or(a: int, b: int) -> int:
    return _combine(_t_or(_GOOD[a], _GOOD[b]), _t_or(_FAULTY[a], _FAULTY[b]))


def d_xor(a: int, b: int) -> int:
    return _combine(_t_xor(_GOOD[a], _GOOD[b]), _t_xor(_FAULTY[a], _FAULTY[b]))


def d_not(a: int) -> int:
    good, faulty = _GOOD[a], _FAULTY[a]
    return _combine(
        2 if good == 2 else 1 - good, 2 if faulty == 2 else 1 - faulty
    )
