"""Command-line interface: ``python -m repro <command>``.

Thin wrappers over the library so the common flows run without writing
Python.  Commands:

* ``info <benchmark>``           — circuit statistics and timing summary
* ``sta <benchmark>``            — statistical STA report (MC + analytic)
* ``atpg <benchmark> <edge#>``   — path-delay tests through an edge
* ``diagnose <benchmark>``       — inject a random defect and diagnose it
* ``table1 [circuits...]``       — the Table I reproduction
* ``benchmarks``                 — list known benchmark circuits
* ``lint``                       — static analysis: determinism linter over
  the codebase and/or semantic checks over the shipped benchmark models
* ``profile <benchmark>``        — fully instrumented diagnosis round:
  span tree, cache/counter/convergence metrics, run manifest
* ``serve <benchmarks...>``      — warm diagnosis-as-a-service JSON-lines
  server (bounded queue, micro-batching; see docs/architecture.md §15)
* ``query``                      — thin client for a running server:
  ping/stats or a diagnose round trip from a behavior-matrix JSON file

Every command accepts ``--metrics out.json``: the run executes under a
live :mod:`repro.obs` recorder and emits a schema-validated run manifest.
"""

from __future__ import annotations

import argparse
import os
import sys
import traceback

import numpy as np

#: Documented exit-code contract (also in ``--help`` and the README).
EXIT_OK = 0
EXIT_INTERNAL = 1  # unexpected exception: a bug; traceback printed
EXIT_USAGE = 2  # user error: bad arguments, mismatched checkpoint
EXIT_TRANSIENT = 3  # infrastructure failure persisting after retries
EXIT_INTERRUPTED = 130  # Ctrl-C (128 + SIGINT), the shell convention

EPILOG = """\
exit status:
  0    success
  1    internal error (unexpected exception; traceback on stderr)
  2    user error (bad arguments, checkpoint from a different run)
  3    transient infrastructure failure that survived every retry and
       fallback (broken worker pools, chunk deadlines, injected chaos)
  130  interrupted (Ctrl-C)
"""


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return value


def _apply_execution_flags(args) -> None:
    """Export ``--parallel`` / ``--cache-dir`` flags into the environment.

    Every dictionary construction resolves its executor and cache from the
    ``REPRO_PARALLEL_*`` / ``REPRO_CACHE_DIR`` environment when not passed
    explicitly, so setting the environment here configures the whole call
    tree (table1 -> evaluate_circuit -> run_diagnosis -> build_dictionary)
    without threading arguments through each layer.
    """
    backend = getattr(args, "parallel", None)
    if backend:
        os.environ["REPRO_PARALLEL_BACKEND"] = backend
    workers = getattr(args, "workers", None)
    if workers:
        os.environ["REPRO_PARALLEL_WORKERS"] = str(workers)
    chunk = getattr(args, "chunk_size", None)
    if chunk:
        os.environ["REPRO_PARALLEL_CHUNK"] = str(chunk)
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir:
        os.environ["REPRO_CACHE_DIR"] = cache_dir
    cache_max = getattr(args, "cache_max_entries", None)
    if cache_max:
        os.environ["REPRO_CACHE_MAX_ENTRIES"] = str(cache_max)
    retries = getattr(args, "retries", None)
    if retries is not None:
        os.environ["REPRO_RETRY_MAX"] = str(retries)
    chunk_timeout = getattr(args, "chunk_timeout", None)
    if chunk_timeout is not None:
        os.environ["REPRO_RETRY_TIMEOUT"] = str(chunk_timeout)
    if getattr(args, "no_degrade", False):
        os.environ["REPRO_RETRY_NO_DEGRADE"] = "1"
    kernel = getattr(args, "kernel", None)
    if kernel:
        os.environ["REPRO_TIMING_KERNEL"] = kernel
    sampler = getattr(args, "sampler", None)
    if sampler:
        os.environ["REPRO_SAMPLER"] = sampler
    if getattr(args, "hier", False):
        os.environ["REPRO_HIER"] = "1"
    hier_blocks = getattr(args, "hier_blocks", None)
    if hier_blocks:
        os.environ["REPRO_HIER_BLOCKS"] = str(hier_blocks)


def _load_timing(name: str, samples: int, seed: int):
    from .circuits import load_benchmark
    from .timing import CircuitTiming, SampleSpace

    circuit = load_benchmark(name, seed=seed)
    return CircuitTiming(circuit, SampleSpace(n_samples=samples, seed=seed))


def cmd_benchmarks(_args) -> int:
    from .circuits import PROFILES, benchmark_names

    print("known benchmarks:")
    for name in benchmark_names():
        profile = PROFILES.get(name)
        if profile is None:
            print(f"  {name:8s} (embedded genuine netlist)")
        else:
            print(
                f"  {name:8s} PI {profile.published_inputs:3d}  "
                f"PO {profile.published_outputs:3d}  "
                f"DFF {profile.published_dffs:3d}  "
                f"gates {profile.published_gates:5d}  "
                f"scale {profile.default_scale:.2f}"
            )
    return 0


def cmd_info(args) -> int:
    timing = _load_timing(args.benchmark, args.samples, args.seed)
    circuit = timing.circuit
    stats = circuit.stats()
    print(f"{circuit.name}: {stats}")
    print(f"mean cell delay: {timing.mean_cell_delay():.3f} delay units")
    return 0


def cmd_sta(args) -> int:
    from .timing import analyze, analyze_analytic, suggest_clock

    timing = _load_timing(args.benchmark, args.samples, args.seed)
    sta = analyze(timing)
    delay = sta.circuit_delay()
    print(f"{timing.circuit.name}: circuit delay (Monte-Carlo, "
          f"n={timing.space.n_samples})")
    print(f"  mean {delay.mean:.3f}  std {delay.std:.3f}  "
          f"q95 {delay.quantile(0.95):.3f}  q99 {delay.quantile(0.99):.3f}")
    analytic = analyze_analytic(timing)["__circuit__"]
    print(f"  analytic (Clark): mean {analytic.mean:.3f}  std {analytic.std:.3f}")
    print(f"  suggested test clock (q95): {suggest_clock(timing, 0.95):.3f}")
    return 0


def cmd_atpg(args) -> int:
    from .atpg import generate_path_tests

    timing = _load_timing(args.benchmark, args.samples, args.seed)
    circuit = timing.circuit
    if not 0 <= args.edge < len(circuit.edges):
        print(f"edge index out of range (0..{len(circuit.edges) - 1})",
              file=sys.stderr)
        return 2
    edge = circuit.edges[args.edge]
    patterns, tests = generate_path_tests(
        timing, edge, n_paths=args.paths, rng_seed=args.seed
    )
    print(f"site {edge}: {len(patterns)} tests")
    for index, test in enumerate(tests):
        print(f"  test {index}: {test.achieved.value:10s} "
              f"len {len(test.path):3d}  "
              f"nominal {test.path.nominal_length(timing):7.2f}  "
              f"path {test.path}")
    return 0


def cmd_diagnose(args) -> int:
    from . import quick_diagnosis_demo

    report = quick_diagnosis_demo(args.benchmark, seed=args.seed,
                                  n_samples=args.samples)
    print(f"benchmark          : {report['benchmark']}")
    print(f"injected defect    : {report['injected']} (hidden ground truth)")
    print(f"patterns applied   : {report['patterns']}")
    print(f"cut-off clock      : {report['clk']:.3f}")
    print(f"failing entries    : {report['failing_observations']}")
    print(f"suspects           : {report['suspects']}")
    print("rank of true defect:")
    for method, rank in report["rank_by_method"].items():
        print(f"  {method:10s}: {rank}")
    return 0


def cmd_characterize(args) -> int:
    """Inject a random defect, then locate + size + type it; optional
    markdown report via ``--report``."""
    from .atpg import generate_path_tests
    from .core import (
        build_dictionary,
        diagnose_all,
        estimate_defect_size,
        suspect_edges,
    )
    from .defects import SingleDefectModel, classify_defect_type, draw_failing_trial
    from .experiments import render_diagnosis_report
    from .timing import diagnosis_clock, simulate_pattern_set

    timing = _load_timing(args.benchmark, args.samples, args.seed)
    rng = np.random.default_rng(args.seed)
    model = SingleDefectModel(timing)
    defect = patterns = None
    for _ in range(20):
        defect = model.draw(rng)
        patterns, _ = generate_path_tests(
            timing, defect.edge, n_paths=10, rng_seed=args.seed
        )
        if len(patterns):
            break
    if patterns is None or not len(patterns):
        print("could not generate patterns for any drawn defect", file=sys.stderr)
        return 1
    sims = simulate_pattern_set(timing, list(patterns))
    clk = diagnosis_clock(
        timing, list(patterns), 0.85,
        simulations=sims, targets=patterns.target_observations(),
    )
    trial, _ = draw_failing_trial(timing, patterns, clk, model, rng, defect=defect)
    suspects = suspect_edges(sims, trial.behavior)
    dictionary = build_dictionary(
        timing, patterns, clk, suspects,
        model.dictionary_size_variable().samples, base_simulations=sims,
        size_distribution=model.dictionary_size_distribution(),
    )
    results = diagnose_all(dictionary, trial.behavior)
    located = results["alg_rev"].top(1)[0] if results["alg_rev"].ranking else None
    size_estimate = None
    type_verdict = None
    if located is not None:
        size_estimate = estimate_defect_size(
            timing, patterns, clk, trial.behavior, located, base_simulations=sims
        )
        type_verdict = classify_defect_type(
            timing, patterns, clk, trial.behavior, located, base_simulations=sims
        )
    report = render_diagnosis_report(
        args.benchmark, clk, trial.behavior, results, dictionary,
        size_estimate=size_estimate, type_verdict=type_verdict,
    )
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(report)
        print(f"report written to {args.report}")
    else:
        print(report)
    print(f"(hidden ground truth: {defect.edge}, "
          f"alg_rev rank {results['alg_rev'].rank_of(defect.edge)})")
    return 0


def cmd_profile(args) -> int:
    """One fully instrumented diagnosis round (see ``docs/architecture.md``
    §10): simulate a failing chip, build the fault dictionary cold and
    warm through a cache, diagnose — all under a live metrics recorder —
    then prove the instrumented dictionary is bit-identical to an
    uninstrumented build and print/emit the metrics.
    """
    import tempfile

    from . import obs
    from .atpg import generate_path_tests
    from .core import (
        DictionaryCache,
        build_dictionary,
        diagnose_all,
        resolve_cache,
        suspect_edges,
    )
    from .defects import SingleDefectModel, draw_failing_trial
    from .timing import diagnosis_clock, simulate_pattern_set

    recorder = obs.get_recorder()
    if not recorder.enabled:  # no --metrics flag: still profile, to stdout
        recorder = obs.install()

    with recorder.span("profile"):
        with recorder.span("profile.load"):
            timing = _load_timing(args.benchmark, args.samples, args.seed)
        rng = np.random.default_rng(args.seed)
        model = SingleDefectModel(timing)
        with recorder.span("profile.atpg"):
            defect = patterns = None
            for _ in range(20):
                defect = model.draw(rng)
                patterns, _tests = generate_path_tests(
                    timing, defect.edge, n_paths=args.paths, rng_seed=args.seed
                )
                if len(patterns):
                    break
            if patterns is None or not len(patterns):
                print("could not generate patterns for any drawn defect",
                      file=sys.stderr)
                return 1
        with recorder.span("profile.simulate"):
            sims = simulate_pattern_set(timing, list(patterns))
            clk = diagnosis_clock(
                timing, list(patterns), 0.85,
                simulations=sims, targets=patterns.target_observations(),
            )
            trial, _redraws = draw_failing_trial(
                timing, patterns, clk, model, rng, defect=defect
            )
            suspects = suspect_edges(sims, trial.behavior)
        sizes = model.dictionary_size_variable().samples
        distribution = model.dictionary_size_distribution()
        with tempfile.TemporaryDirectory(prefix="repro-profile-") as scratch:
            # An explicit --cache-dir profiles that cache; otherwise a
            # scratch directory exercises the cold-store/warm-hit path.
            cache = resolve_cache(None) or DictionaryCache(scratch)
            with recorder.span("profile.dictionary"):
                dictionary = build_dictionary(
                    timing, patterns, clk, suspects, sizes,
                    base_simulations=sims, cache=cache,
                    size_distribution=distribution,
                )
                build_dictionary(  # warm pass: served from the cache
                    timing, patterns, clk, suspects, sizes, cache=cache,
                    size_distribution=distribution,
                )
        with recorder.span("profile.diagnose"):
            results = diagnose_all(dictionary, trial.behavior)

    # The determinism proof the manifest carries: rebuilding with
    # instrumentation disabled must reproduce the dictionary bit for bit.
    with obs.use_recorder(obs.NullRecorder()):
        reference = build_dictionary(
            timing, patterns, clk, suspects, sizes, base_simulations=sims,
            size_distribution=distribution,
        )
    identical = np.array_equal(reference.m_crt, dictionary.m_crt) and all(
        np.array_equal(reference.signatures[edge], dictionary.signatures[edge])
        for edge in reference.suspects
    )
    recorder.gauge("profile.bit_identical", 1.0 if identical else 0.0)

    # The second determinism proof: the other timing kernel reproduces the
    # dictionary bit for bit.  Rebuilt cache-less from fresh base
    # simulations — a cache hit here would prove nothing.
    from .timing import active_kernel

    this_kernel = active_kernel()
    other_kernel = "reference" if this_kernel == "compiled" else "compiled"
    saved_env = {
        name: os.environ.pop(name, None)
        for name in ("REPRO_TIMING_KERNEL", "REPRO_CACHE_DIR")
    }
    os.environ["REPRO_TIMING_KERNEL"] = other_kernel
    try:
        with obs.use_recorder(obs.NullRecorder()):
            other_sims = simulate_pattern_set(timing, list(patterns))
            other = build_dictionary(
                timing, patterns, clk, suspects, sizes,
                base_simulations=other_sims,
                size_distribution=distribution,
            )
    finally:
        for name, value in saved_env.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    kernels_identical = np.array_equal(other.m_crt, dictionary.m_crt) and all(
        np.array_equal(other.signatures[edge], dictionary.signatures[edge])
        for edge in other.suspects
    )
    recorder.gauge(
        "profile.kernels_bit_identical", 1.0 if kernels_identical else 0.0
    )

    top = results["alg_rev"].top(1)[0] if results["alg_rev"].ranking else None
    print(f"profile: {args.benchmark}  clk {clk:.3f}  "
          f"suspects {len(suspects)}  top alg_rev {top}")
    print(f"instrumented == uninstrumented dictionary: {identical}")
    print(f"{this_kernel} kernel == {other_kernel} kernel dictionary: "
          f"{kernels_identical}")
    print(f"span depth: {recorder.span_depth()}")
    print()
    print(obs.render_metrics_text(recorder.snapshot()))
    return 0 if identical and kernels_identical else 1


def cmd_lint(args) -> int:
    """Run the static-analysis subsystem (see :mod:`repro.lint`).

    Exit status 0 when no error-severity findings remain, 1 otherwise —
    warnings and infos never fail the gate.
    """
    from .lint import (
        LintReport,
        parse_suppressions,
        render_report,
        render_rule_catalog,
        run_lint,
    )

    if args.rules:
        print(render_rule_catalog())
        return 0
    selected = [
        mode for mode, flag in (
            ("code", args.code), ("models", args.models), ("flow", args.flow)
        ) if flag
    ]
    if args.both or len(selected) == 3:
        modes = ["all"]
    elif selected:
        modes = selected
    elif args.manifests or args.checkpoints:
        # --manifest/--checkpoint alone audit just those artifacts
        # (fast CI gate, skips the code/model engines).
        modes = ["manifests"]
    else:
        modes = ["all"]
    report = LintReport()
    try:
        for index, mode in enumerate(modes):
            part = run_lint(
                mode,
                paths=args.paths or None,
                circuits=args.circuits or None,
                cache_dir=args.cache_dir or None,
                seed=args.seed,
                suppress=parse_suppressions(args.suppress),
                # artifact paths audit once, not once per engine pass
                manifests=(args.manifests or None) if index == 0 else None,
                checkpoints=(args.checkpoints or None) if index == 0 else None,
                flow_baseline=args.baseline or None,
                changed=args.changed,
            )
            report.extend(part.diagnostics)
            report.suppressed += part.suppressed
    except (RuntimeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    print(render_report(report, args.format))
    return report.exit_code


def cmd_serve(args) -> int:
    """Run the warm diagnosis service (see :mod:`repro.service`).

    Registers one standard workload per benchmark (pattern set, clock,
    suspect set all fixed by ``--seed``), prewarms the dictionaries
    unless ``--cold``, then serves the JSON-lines protocol until
    interrupted.  ``REPRO_CACHE_DIR`` + ``REPRO_CACHE_FORMAT=store``
    back the warm dictionaries with shared mmapped pages.

    The serving plane runs supervised (``docs/architecture.md`` §16): a
    circuit breaker sheds load when p95 batch latency or failure rate
    crosses the ``--breaker-*`` thresholds, worker death mid-batch
    degrades down the process -> thread -> serial ladder, and SIGTERM
    drains gracefully — stop accepting, flush every in-flight reply,
    exit 0 (Ctrl-C keeps the documented 130).
    """
    import asyncio
    import signal

    from .service import (
        BreakerConfig,
        DiagnosisServer,
        DiagnosisService,
        ServerConfig,
        ServiceSupervisor,
        SupervisorConfig,
        standard_workload,
    )

    service = DiagnosisService(
        cache=args.cache_dir or None,
        parallel=args.parallel or None,
        sampler=args.sampler or None,
        hier=args.hier or None,
    )
    for benchmark in args.benchmarks:
        workload, _model = standard_workload(
            benchmark, samples=args.samples, seed=args.seed,
            n_paths=args.paths,
        )
        service.register(workload)
        print(f"registered workload {benchmark!r}: "
              f"{len(workload.suspects)} suspects, "
              f"behavior shape {workload.behavior_shape}")
    if not args.cold:
        service.warm_all()
        print("dictionaries warm")
    supervisor = ServiceSupervisor(service, SupervisorConfig(
        breaker=BreakerConfig(
            window=args.breaker_window,
            min_samples=args.breaker_min_samples,
            max_p95_latency=args.breaker_latency or None,
            max_failure_rate=args.breaker_failure_rate,
            cooldown=args.breaker_cooldown,
        ),
    ))
    server = DiagnosisServer(service, ServerConfig(
        host=args.host, port=args.port, queue_limit=args.queue_limit,
        max_batch=args.max_batch, request_timeout=args.request_timeout,
        write_timeout=args.write_timeout, drain_grace=args.drain_grace,
    ), supervisor=supervisor)

    async def _run() -> int:
        await server.start()
        print(f"serving on {args.host}:{server.port}", flush=True)
        loop = asyncio.get_running_loop()
        sigterm = loop.create_future()

        def _on_sigterm() -> None:
            if not sigterm.done():
                sigterm.set_result(None)

        try:
            loop.add_signal_handler(signal.SIGTERM, _on_sigterm)
        except (NotImplementedError, RuntimeError):
            pass  # non-unix event loops: no graceful-drain signal
        serve = asyncio.ensure_future(server.serve_forever())
        try:
            # Ctrl-C cancels this await; letting the cancellation
            # propagate (after cleanup) keeps the documented 130 exit.
            await asyncio.wait(
                {serve, sigterm}, return_when=asyncio.FIRST_COMPLETED
            )
            if sigterm.done():
                print("SIGTERM received: draining", flush=True)
                serve.cancel()
                try:
                    await serve
                except asyncio.CancelledError:
                    pass
                await server.drain()
                print("drained; exiting", flush=True)
            elif serve.done():
                serve.result()  # surface an unexpected serve exit
        finally:
            if not serve.done():
                serve.cancel()
                try:
                    await serve
                except asyncio.CancelledError:
                    pass
            await server.stop()
        return 0

    return asyncio.run(_run())


def cmd_query(args) -> int:
    """One client round trip against a running ``repro serve``."""
    import json

    from .service import ServiceClient

    with ServiceClient(args.host, args.port, timeout=args.timeout) as client:
        if args.ping:
            print("pong" if client.ping() else "no pong")
            return 0
        if args.stats:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.workloads:
            for name in client.workloads():
                print(name)
            return 0
        if not args.workload or not args.behavior:
            print("error: need WORKLOAD and --behavior FILE "
                  "(or --ping/--stats/--workloads)", file=sys.stderr)
            return EXIT_USAGE
        with open(args.behavior) as handle:
            payload = json.load(handle)
        if isinstance(payload, dict):
            payload = payload.get("behavior")
        answer = client.diagnose(
            args.workload, payload,
            error_function=args.error_function, top_k=args.top_k,
        )
        print(f"workload {answer.workload}  method {answer.method}")
        for rank, (edge, score) in enumerate(answer.ranking, start=1):
            print(f"  {rank:3d}. {edge:30s} {score:.6g}")
    return 0


def cmd_table1(args) -> int:
    from .experiments import render_shape_checks, render_table1, run_table1

    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint DIR", file=sys.stderr)
        return EXIT_USAGE
    result = run_table1(
        circuits=args.circuits or None,
        n_trials=args.trials,
        n_samples=args.samples,
        seed=args.seed,
        checkpoint_dir=args.checkpoint or None,
        resume=args.resume,
    )
    print(render_table1(result))
    print()
    print(render_shape_checks(result))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__, epilog=EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--samples", type=int, default=300)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--parallel",
            choices=("serial", "process", "futures", "thread"),
            default="",
            help="dictionary-construction backend (default: serial)",
        )
        p.add_argument(
            "--workers", type=_positive_int, default=None,
            help="worker count for parallel backends (default: all CPUs)",
        )
        p.add_argument(
            "--chunk-size", type=_positive_int, default=None,
            dest="chunk_size",
            help="suspects per worker task (default: auto)",
        )
        p.add_argument(
            "--cache-dir", type=str, default="", dest="cache_dir",
            help="enable the on-disk dictionary cache in this directory",
        )
        p.add_argument(
            "--cache-max-entries", type=_positive_int, default=None,
            dest="cache_max_entries", metavar="N",
            help="cap the dictionary cache at N entries (LRU eviction)",
        )
        p.add_argument(
            "--retries", type=int, default=None, metavar="N",
            help="re-attempts per failed work chunk (default: 2)",
        )
        p.add_argument(
            "--chunk-timeout", type=float, default=None, dest="chunk_timeout",
            metavar="SECONDS",
            help="per-chunk deadline on pooled backends (default: none)",
        )
        p.add_argument(
            "--no-degrade", action="store_true", dest="no_degrade",
            help="fail with a typed error instead of degrading "
            "process -> thread -> serial when a worker pool breaks",
        )
        p.add_argument(
            "--kernel", choices=("compiled", "reference"), default="",
            help="dynamic-timing simulation kernel (default: compiled; "
            "both are bit-identical, this is a performance knob)",
        )
        p.add_argument(
            "--sampler", choices=("plain", "is", "adaptive"), default="",
            help="dictionary signature estimator (default: plain; 'is' = "
            "importance sampling, 'adaptive' adds per-suspect sample "
            "allocation — both variance-reduction modes, bit-reproducible "
            "at fixed seed)",
        )
        p.add_argument(
            "--hier", action="store_true",
            help="build dictionaries through hierarchical block timing "
            "models (partition once, extract per-block interface models, "
            "replay per block; bit-identical to the flat build, shards "
            "parallel work by block)",
        )
        p.add_argument(
            "--hier-blocks", type=_positive_int, default=None,
            dest="hier_blocks", metavar="N",
            help="block count for --hier (default: depth-scaled heuristic)",
        )
        p.add_argument(
            "--metrics", type=str, default="", metavar="OUT.json",
            help="record metrics during the run and write a schema-"
            "validated run manifest to this path",
        )

    sub.add_parser("benchmarks").set_defaults(func=cmd_benchmarks)

    p = sub.add_parser("info")
    p.add_argument("benchmark")
    common(p)
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("sta")
    p.add_argument("benchmark")
    common(p)
    p.set_defaults(func=cmd_sta)

    p = sub.add_parser("atpg")
    p.add_argument("benchmark")
    p.add_argument("edge", type=int, help="edge index (see circuit.edges)")
    p.add_argument("--paths", type=int, default=8)
    common(p)
    p.set_defaults(func=cmd_atpg)

    p = sub.add_parser("diagnose")
    p.add_argument("benchmark")
    common(p)
    p.set_defaults(func=cmd_diagnose)

    p = sub.add_parser("characterize")
    p.add_argument("benchmark")
    p.add_argument("--report", type=str, default="", help="write markdown here")
    common(p)
    p.set_defaults(func=cmd_characterize)

    p = sub.add_parser("table1")
    p.add_argument("circuits", nargs="*", help="circuit subset (default all)")
    p.add_argument("--trials", type=int, default=20)
    p.add_argument(
        "--checkpoint", type=str, default="", metavar="DIR",
        help="write per-circuit trial-boundary checkpoints into DIR",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted campaign from --checkpoint DIR "
        "(bit-identical to an uninterrupted run)",
    )
    common(p)
    p.set_defaults(func=cmd_table1)

    p = sub.add_parser(
        "profile",
        help="instrumented diagnosis round: spans, counters, run manifest",
    )
    p.add_argument("benchmark")
    p.add_argument("--paths", type=int, default=10)
    common(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "serve",
        help="warm diagnosis-as-a-service JSON-lines server",
    )
    p.add_argument("benchmarks", nargs="+",
                   help="benchmark circuits to register as workloads")
    p.add_argument("--host", type=str, default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787,
                   help="TCP port (0 = ephemeral, printed at startup)")
    p.add_argument("--paths", type=int, default=8,
                   help="ATPG paths per workload defect site")
    p.add_argument(
        "--queue-limit", type=_positive_int, default=64, dest="queue_limit",
        help="pending-request bound; excess requests get an immediate "
        "'overloaded' response (the backpressure contract)",
    )
    p.add_argument(
        "--max-batch", type=_positive_int, default=16, dest="max_batch",
        help="micro-batch cap per dispatcher drain (never changes answers)",
    )
    p.add_argument(
        "--request-timeout", type=float, default=30.0, dest="request_timeout",
        metavar="SECONDS", help="per-request deadline, queue time included",
    )
    p.add_argument(
        "--write-timeout", type=float, default=10.0, dest="write_timeout",
        metavar="SECONDS",
        help="per-response write deadline; a reader stalled past it is "
        "disconnected so it cannot wedge the dispatcher",
    )
    p.add_argument(
        "--drain-grace", type=float, default=10.0, dest="drain_grace",
        metavar="SECONDS",
        help="SIGTERM drain budget: flush in-flight replies, then exit 0",
    )
    p.add_argument(
        "--breaker-window", type=_positive_int, default=32,
        dest="breaker_window",
        help="circuit-breaker sliding window, in batches",
    )
    p.add_argument(
        "--breaker-min-samples", type=_positive_int, default=8,
        dest="breaker_min_samples",
        help="batches observed before the breaker may trip",
    )
    p.add_argument(
        "--breaker-latency", type=float, default=0.0,
        dest="breaker_latency", metavar="SECONDS",
        help="p95 batch-latency threshold (0 disables the latency gate)",
    )
    p.add_argument(
        "--breaker-failure-rate", type=float, default=0.5,
        dest="breaker_failure_rate", metavar="FRACTION",
        help="windowed batch failure-rate threshold",
    )
    p.add_argument(
        "--breaker-cooldown", type=float, default=5.0,
        dest="breaker_cooldown", metavar="SECONDS",
        help="seconds open before a half-open probe batch is admitted",
    )
    p.add_argument(
        "--cold", action="store_true",
        help="skip dictionary prewarming; first query per workload pays "
        "the build",
    )
    common(p)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "query",
        help="client for a running 'repro serve' (ping/stats/diagnose)",
    )
    p.add_argument("workload", nargs="?", default="",
                   help="workload name registered on the server")
    p.add_argument("--host", type=str, default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787)
    p.add_argument(
        "--behavior", type=str, default="", metavar="FILE.json",
        help="behavior matrix as a JSON 2-D array (or {\"behavior\": ...})",
    )
    p.add_argument(
        "--error-function", type=str, default="alg_rev",
        dest="error_function",
        help="diagnosis error function name (default: alg_rev)",
    )
    p.add_argument("--top-k", type=_positive_int, default=None, dest="top_k",
                   help="truncate the returned ranking")
    p.add_argument("--timeout", type=float, default=60.0,
                   help="client-side socket timeout in seconds")
    p.add_argument("--ping", action="store_true", help="liveness round trip")
    p.add_argument("--stats", action="store_true",
                   help="print the server's counters and warm state")
    p.add_argument("--workloads", action="store_true",
                   help="list the server's registered workloads")
    p.set_defaults(func=cmd_query)

    p = sub.add_parser(
        "lint",
        help="static analysis: determinism linter, semantic model checks, "
        "whole-program flow analyses",
    )
    p.add_argument(
        "--code", action="store_true",
        help="run the determinism linter over the package source",
    )
    p.add_argument(
        "--models", action="store_true",
        help="run the semantic checker over the shipped benchmark circuits",
    )
    p.add_argument(
        "--flow", action="store_true",
        help="run the whole-program dataflow analyses (F7xx/P8xx/K9xx): "
        "interprocedural RNG threading, pool-worker purity, cache-key "
        "completeness",
    )
    p.add_argument(
        "--all", action="store_true", dest="both",
        help="run every engine (the default when no engine flag is given)",
    )
    p.add_argument(
        "--changed", nargs="?", const="HEAD", default=None, metavar="REF",
        help="scope code/flow findings to files changed vs a git ref "
        "(default HEAD; the fast pre-push loop)",
    )
    p.add_argument(
        "--baseline", type=str, default="", metavar="PATH",
        help="flow-analysis baseline/suppression file (default: "
        "lint-flow-baseline.json in the current directory when present)",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json follows the documented report schema)",
    )
    p.add_argument(
        "--path", action="append", dest="paths", metavar="PATH",
        help="extra source file/tree for --code (repeatable; default: the "
        "installed repro package)",
    )
    p.add_argument(
        "--circuits", nargs="*", metavar="NAME",
        help="benchmark subset for --models (default: all shipped)",
    )
    p.add_argument(
        "--manifest", action="append", dest="manifests", metavar="PATH",
        help="audit an observability run manifest (S5xx rules; repeatable; "
        "alone it skips the code/model engines)",
    )
    p.add_argument(
        "--checkpoint", action="append", dest="checkpoints", metavar="PATH",
        help="audit a resilience checkpoint file or directory (R6xx rules; "
        "repeatable; alone it skips the code/model engines)",
    )
    p.add_argument(
        "--suppress", type=str, default="",
        help="comma-separated rule IDs or globs to suppress (e.g. D105,C2*)",
    )
    p.add_argument(
        "--rules", action="store_true",
        help="print the rule catalog and exit",
    )
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--cache-dir", type=str, default="", dest="cache_dir",
        help="also audit this dictionary-cache directory (S4xx rules)",
    )
    p.set_defaults(func=cmd_lint)
    return parser


def _run_config(args) -> dict:
    """The resolved execution knobs echoed into the run manifest."""
    config = {}
    for field in ("samples", "trials", "paths", "parallel", "workers",
                  "chunk_size", "cache_dir", "cache_max_entries", "retries",
                  "chunk_timeout", "checkpoint", "sampler", "hier",
                  "hier_blocks"):
        value = getattr(args, field, None)
        if value not in (None, "", False):
            config[field] = value
    return config


def _dispatch(args) -> int:
    """Run the selected command under the documented exit-code contract.

    Typed resilience failures map onto stable codes scripts can branch
    on (see ``EPILOG``): a checkpoint that belongs to a different run is
    a *user* error (2), any other :class:`~repro.resilience.ResilienceError`
    means the infrastructure failed even after retries and fallbacks (3),
    and an unexpected exception is a bug (1, traceback preserved).
    """
    from .resilience import CheckpointMismatchError, ResilienceError
    from .service.errors import BadRequestError

    try:
        return args.func(args)
    except BrokenPipeError:  # output piped into head/less
        return EXIT_OK
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except CheckpointMismatchError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except BadRequestError as error:
        # Malformed service requests (unknown workload, bad matrix shape)
        # are user errors, like checkpoint mismatches.
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except ResilienceError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_TRANSIENT
    except Exception:
        traceback.print_exc()
        return EXIT_INTERNAL


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    _apply_execution_flags(args)
    metrics_path = getattr(args, "metrics", "") or ""
    if not metrics_path:
        return _dispatch(args)

    from . import obs

    recorder = obs.install()
    try:
        status = _dispatch(args)
        # The manifest is written even for failed runs: a post-mortem
        # needs the retry/fallback/chaos counters more than a clean run.
        manifest = obs.build_manifest(
            command=args.command,
            workload=getattr(args, "benchmark", None),
            seed=getattr(args, "seed", None),
            config=_run_config(args),
            metrics=recorder.snapshot(),
            status="ok" if status == 0 else "error",
        )
        obs.write_manifest(metrics_path, manifest)
        print(f"metrics manifest written to {metrics_path}")
        return status
    finally:
        obs.disable()


if __name__ == "__main__":
    raise SystemExit(main())
