"""The run manifest: one JSON document describing what a run did.

``python -m repro profile <workload>`` (and any CLI command invoked with
``--metrics out.json``) emits a manifest carrying the run identity (the
command, workload, seed and resolved execution config), the environment
(interpreter, numpy, git revision when resolvable) and the full metrics
tree captured by the active :class:`repro.obs.Recorder` — spans, counters,
gauges and convergence meters.

The shape is pinned by :data:`MANIFEST_SCHEMA` and enforced by the
hand-rolled :func:`validate_manifest` (same no-third-party-``jsonschema``
policy as ``repro.lint.diagnostics``).  :func:`stable_skeleton` reduces a
manifest to its *schema-stable* structure — key paths, span-name tree,
counter/gauge/meter names, no wall-clock or measured values — which is
what the golden regression fixture under ``tests/fixtures/obs/`` pins, so
schema drift fails loudly while timing noise never does.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from typing import Dict, List, Optional

import numpy as np

__all__ = [
    "MANIFEST_FORMAT",
    "MANIFEST_VERSION",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "validate_manifest",
    "write_manifest",
    "load_manifest",
    "stable_skeleton",
    "span_tree_depth",
]

#: Bumped whenever the manifest shape changes incompatibly.
MANIFEST_VERSION = 1
MANIFEST_FORMAT = "repro-run-manifest-v1"

_RUN_STATUSES = ("ok", "error")

#: Documented manifest shape (JSON-Schema subset; ``#/definitions/span``
#: is self-recursive through ``children``).
MANIFEST_SCHEMA: Dict = {
    "type": "object",
    "required": ["format", "version", "tool", "run", "environment", "metrics"],
    "properties": {
        "format": {"type": "string", "const": MANIFEST_FORMAT},
        "version": {"type": "integer", "const": MANIFEST_VERSION},
        "tool": {
            "type": "object",
            "required": ["name", "version"],
            "properties": {
                "name": {"type": "string"},
                "version": {"type": "string"},
            },
        },
        "run": {
            "type": "object",
            "required": ["command", "workload", "seed", "config", "status"],
            "properties": {
                "command": {"type": "string"},
                "workload": {"type": ["string", "null"]},
                "seed": {"type": ["integer", "null"]},
                "config": {"type": "object"},
                "status": {"enum": list(_RUN_STATUSES)},
            },
        },
        "environment": {
            "type": "object",
            "required": ["python", "platform", "numpy", "cpu_count", "git_rev"],
            "properties": {
                "python": {"type": "string"},
                "platform": {"type": "string"},
                "numpy": {"type": "string"},
                "cpu_count": {"type": ["integer", "null"]},
                "git_rev": {"type": ["string", "null"]},
            },
        },
        "metrics": {
            "type": "object",
            "required": ["spans", "counters", "gauges", "convergence"],
            "properties": {
                "spans": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/span"},
                },
                "counters": {
                    "type": "object",
                    "additionalProperties": {"type": "number"},
                },
                "gauges": {
                    "type": "object",
                    "additionalProperties": {"type": "number"},
                },
                "convergence": {
                    "type": "object",
                    "additionalProperties": {
                        "type": "object",
                        "required": [
                            "count", "wsum", "wsum2", "mean", "m2",
                            "variance", "std_error", "ess",
                        ],
                    },
                },
            },
        },
    },
    "definitions": {
        "span": {
            "type": "object",
            "required": ["name", "count", "total_s"],
            "properties": {
                "name": {"type": "string", "minLength": 1},
                "count": {"type": "integer", "minimum": 0},
                "total_s": {"type": "number", "minimum": 0},
                "children": {
                    "type": "array",
                    "items": {"$ref": "#/definitions/span"},
                },
            },
        },
    },
}

_CONVERGENCE_FIELDS = (
    "count", "wsum", "wsum2", "mean", "m2", "variance", "std_error", "ess",
)


def _git_revision() -> Optional[str]:
    """Short git revision of the source tree, or ``None``.

    Best-effort only: a manifest from an sdist install or a detached copy
    simply records ``null`` — never an exception, never a hang.
    """
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    revision = completed.stdout.strip()
    return revision or None


def build_manifest(
    command: str,
    workload: Optional[str] = None,
    seed: Optional[int] = None,
    config: Optional[Dict] = None,
    metrics: Optional[Dict] = None,
    status: str = "ok",
) -> Dict:
    """Assemble a manifest from the active recorder (or given metrics)."""
    import platform

    from . import get_recorder
    from .. import __version__

    if metrics is None:
        metrics = get_recorder().snapshot()
    return {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "tool": {"name": "repro", "version": __version__},
        "run": {
            "command": command,
            "workload": workload,
            "seed": None if seed is None else int(seed),
            "config": dict(config or {}),
            "status": status,
        },
        "environment": {
            "python": platform.python_version(),
            "platform": sys.platform,
            "numpy": np.__version__,
            "cpu_count": os.cpu_count(),
            "git_rev": _git_revision(),
        },
        "metrics": metrics,
    }


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _check_span(node, where: str, problems: List[str]) -> None:
    if not isinstance(node, dict):
        problems.append(f"{where} is not an object")
        return
    name = node.get("name")
    if not isinstance(name, str) or not name:
        problems.append(f"{where} has no non-empty 'name'")
    if not _is_int(node.get("count")) or node.get("count") < 0:
        problems.append(f"{where} 'count' is not a non-negative integer")
    if not _is_number(node.get("total_s")) or node.get("total_s") < 0:
        problems.append(f"{where} 'total_s' is not a non-negative number")
    children = node.get("children", [])
    if not isinstance(children, list):
        problems.append(f"{where} 'children' is not an array")
        return
    for index, child in enumerate(children):
        _check_span(child, f"{where}.children[{index}]", problems)


def validate_manifest(payload) -> List[str]:
    """All the ways ``payload`` violates :data:`MANIFEST_SCHEMA`.

    Returns an empty list for a valid manifest; never raises on malformed
    input — the lint engine turns each problem into an ``S502`` finding.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["top level is not an object"]
    for key in ("format", "version", "tool", "run", "environment", "metrics"):
        if key not in payload:
            problems.append(f"missing key {key!r}")
    if payload.get("format") != MANIFEST_FORMAT:
        problems.append(f"unknown format {payload.get('format')!r}")
    if payload.get("version") != MANIFEST_VERSION:
        problems.append(f"unsupported version {payload.get('version')!r}")

    tool = payload.get("tool")
    if not isinstance(tool, dict):
        problems.append("'tool' is not an object")
    else:
        for key in ("name", "version"):
            if not isinstance(tool.get(key), str):
                problems.append(f"tool[{key!r}] is not a string")

    run = payload.get("run")
    if not isinstance(run, dict):
        problems.append("'run' is not an object")
    else:
        if not isinstance(run.get("command"), str):
            problems.append("run['command'] is not a string")
        workload = run.get("workload")
        if workload is not None and not isinstance(workload, str):
            problems.append("run['workload'] is neither a string nor null")
        seed = run.get("seed")
        if seed is not None and not _is_int(seed):
            problems.append("run['seed'] is neither an integer nor null")
        if not isinstance(run.get("config"), dict):
            problems.append("run['config'] is not an object")
        if run.get("status") not in _RUN_STATUSES:
            problems.append(f"run['status'] is not one of {_RUN_STATUSES}")

    environment = payload.get("environment")
    if not isinstance(environment, dict):
        problems.append("'environment' is not an object")
    else:
        for key in ("python", "platform", "numpy", "cpu_count", "git_rev"):
            if key not in environment:
                problems.append(f"environment missing key {key!r}")

    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        problems.append("'metrics' is not an object")
        return problems
    spans = metrics.get("spans")
    if not isinstance(spans, list):
        problems.append("metrics['spans'] is not an array")
    else:
        for index, node in enumerate(spans):
            _check_span(node, f"metrics.spans[{index}]", problems)
    for section in ("counters", "gauges"):
        table = metrics.get(section)
        if not isinstance(table, dict):
            problems.append(f"metrics[{section!r}] is not an object")
            continue
        for name, value in table.items():
            if not _is_number(value):
                problems.append(
                    f"metrics.{section}[{name!r}] is not a number"
                )
    convergence = metrics.get("convergence")
    if not isinstance(convergence, dict):
        problems.append("metrics['convergence'] is not an object")
    else:
        for name, meter in convergence.items():
            where = f"metrics.convergence[{name!r}]"
            if not isinstance(meter, dict):
                problems.append(f"{where} is not an object")
                continue
            for field in _CONVERGENCE_FIELDS:
                if not _is_number(meter.get(field)):
                    problems.append(f"{where}[{field!r}] is not a number")
    return problems


# ----------------------------------------------------------------------
# I/O and the golden skeleton
# ----------------------------------------------------------------------
def write_manifest(path: str, payload: Dict) -> str:
    """Validate and write a manifest; returns the path written."""
    problems = validate_manifest(payload)
    if problems:
        raise ValueError(
            "refusing to write an invalid manifest: " + "; ".join(problems)
        )
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return os.fspath(path)


def load_manifest(path: str) -> Dict:
    with open(path) as handle:
        return json.load(handle)


def _span_names(nodes) -> Dict[str, Dict]:
    """Span list -> nested ``{name: {child: ...}}`` name tree."""
    tree: Dict[str, Dict] = {}
    for node in nodes:
        tree[str(node["name"])] = _span_names(node.get("children", ()))
    return tree


def span_tree_depth(metrics: Dict) -> int:
    """Deepest span nesting level in a metrics payload."""

    def depth(nodes) -> int:
        if not nodes:
            return 0
        return 1 + max(depth(node.get("children", ())) for node in nodes)

    return depth(metrics.get("spans", ()))


def stable_skeleton(payload: Dict) -> Dict:
    """The schema-stable structure of a manifest (golden-fixture view).

    Keeps the identity constants, key names and the span-name tree; drops
    every measured value — wall-clock totals, counter values, convergence
    moments, environment details — so the golden comparison is immune to
    timing noise and host differences but still fails on any schema or
    instrumentation-naming drift.
    """
    metrics = payload.get("metrics", {})
    return {
        "format": payload.get("format"),
        "version": payload.get("version"),
        "tool_keys": sorted(payload.get("tool", {})),
        "run_keys": sorted(payload.get("run", {})),
        "environment_keys": sorted(payload.get("environment", {})),
        "metrics_keys": sorted(metrics),
        "span_names": _span_names(metrics.get("spans", ())),
        "counter_names": sorted(metrics.get("counters", {})),
        "gauge_names": sorted(metrics.get("gauges", {})),
        "convergence_names": sorted(metrics.get("convergence", {})),
        "convergence_fields": list(_CONVERGENCE_FIELDS),
    }
