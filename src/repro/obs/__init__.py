"""repro.obs — run observability: spans, counters, convergence, manifests.

The instrumentation layer behind ``python -m repro profile`` and the
``--metrics out.json`` CLI flag.  One global recorder slot holds either a
live :class:`Recorder` or the default :class:`NullRecorder`; library code
fetches it per call (:func:`get_recorder`) and records through it:

    from repro import obs

    recorder = obs.get_recorder()
    with recorder.span("dictionary.build"):
        recorder.count("dictionary.suspects", len(suspects))
        if recorder.enabled:                 # guard per-sample work
            recorder.observe("dynamic.settle", samples)

Contract (enforced by ``tests/test_obs.py`` and the determinism suite):

* disabled mode is a constant no-op — no locks, no clock reads, no
  allocation (``benchmarks/bench_obs.py`` pins the overhead),
* recording never touches an RNG stream: instrumented runs are
  bit-identical to uninstrumented ones,
* worker shards merge: thread workers share the (lock-protected)
  recorder, process workers ship snapshots home through
  :func:`repro.core.parallel.map_chunked`.

Manifests (:mod:`repro.obs.manifest`) serialize a snapshot plus run
identity into the schema-validated JSON document CI archives per run.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .convergence import ConvergenceStat
from .manifest import (
    MANIFEST_FORMAT,
    MANIFEST_SCHEMA,
    MANIFEST_VERSION,
    build_manifest,
    load_manifest,
    span_tree_depth,
    stable_skeleton,
    validate_manifest,
    write_manifest,
)
from .recorder import NullRecorder, Recorder, SpanNode
from .render import render_metrics_text

__all__ = [
    "ConvergenceStat",
    "MANIFEST_FORMAT",
    "MANIFEST_SCHEMA",
    "MANIFEST_VERSION",
    "NullRecorder",
    "Recorder",
    "SpanNode",
    "build_manifest",
    "disable",
    "enabled",
    "get_recorder",
    "install",
    "load_manifest",
    "render_metrics_text",
    "span_tree_depth",
    "stable_skeleton",
    "use_recorder",
    "validate_manifest",
    "write_manifest",
]

#: The process-wide recorder slot.  Off by default: nothing records until
#: a caller installs a live Recorder (CLI ``--metrics``, ``profile``, or
#: the library API below).
_ACTIVE: Recorder = NullRecorder()


def get_recorder() -> Recorder:
    """The currently installed recorder (a no-op one when disabled)."""
    return _ACTIVE


def enabled() -> bool:
    return _ACTIVE.enabled


def install(recorder: Optional[Recorder] = None) -> Recorder:
    """Install (and return) a live recorder as the process-wide default."""
    global _ACTIVE
    _ACTIVE = recorder if recorder is not None else Recorder()
    return _ACTIVE


def disable() -> None:
    """Reinstall the no-op recorder (the initial state)."""
    global _ACTIVE
    _ACTIVE = NullRecorder()


@contextmanager
def use_recorder(recorder: Recorder) -> Iterator[Recorder]:
    """Temporarily swap the active recorder (restored on exit)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    try:
        yield recorder
    finally:
        _ACTIVE = previous
