"""The metrics recorder: hierarchical spans, counters, gauges, meters.

One :class:`Recorder` aggregates everything a run does:

* **spans** — nested wall-clock timings (``with recorder.span("x"): ...``)
  aggregated into a tree keyed by span name; each thread keeps its own
  nesting stack (a worker thread's spans attach at the root), while the
  aggregate tree itself is shared and lock-protected, so the thread
  backend of :mod:`repro.core.parallel` merges by construction,
* **counters** — monotonically accumulated integers/floats (cache hits,
  resimulation counts, chunk throughput),
* **gauges** — last-write-wins scalars (worker counts, config echoes),
* **convergence meters** — :class:`repro.obs.convergence.ConvergenceStat`
  streams fed by the Monte-Carlo hot paths.

Process-backend workers cannot share the tree, so a recorder knows how to
:meth:`merge` another recorder's :meth:`snapshot` payload — the executor
ships each worker shard's snapshot home with its results and folds it in
(see ``repro.core.parallel.map_chunked``).

Instrumentation must cost ~nothing when nobody is measuring: the module
default is a :class:`NullRecorder` whose every operation is a constant
no-op (``benchmarks/bench_obs.py`` pins the overhead), and none of this
machinery ever touches an RNG stream — determinism is proven by the
instrumented-vs-uninstrumented rounds in the test suite.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Union

import numpy as np

from .convergence import ConvergenceStat

__all__ = ["SpanNode", "Recorder", "NullRecorder"]


class SpanNode:
    """One aggregated node of the span tree."""

    __slots__ = ("name", "count", "total_s", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total_s = 0.0
        self.children: Dict[str, "SpanNode"] = {}

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = self.children[name] = SpanNode(name)
        return node

    def depth(self) -> int:
        """Levels below (and including) this node's children."""
        if not self.children:
            return 0
        return 1 + max(child.depth() for child in self.children.values())

    def to_payload(self) -> Dict:
        payload: Dict = {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
        }
        if self.children:
            payload["children"] = [
                self.children[name].to_payload()
                for name in sorted(self.children)
            ]
        return payload

    def merge_payload(self, payload: Dict) -> None:
        self.count += int(payload.get("count", 0))
        self.total_s += float(payload.get("total_s", 0.0))
        for child_payload in payload.get("children", ()):
            self.child(str(child_payload["name"])).merge_payload(child_payload)


class _SpanContext:
    """Context manager for one timed block (re-entrant per name)."""

    __slots__ = ("_recorder", "_name", "_node", "_start")

    def __init__(self, recorder: "Recorder", name: str) -> None:
        self._recorder = recorder
        self._name = name
        self._node: Optional[SpanNode] = None
        self._start = 0.0

    def __enter__(self) -> "_SpanContext":
        recorder = self._recorder
        stack = recorder._span_stack()
        with recorder._lock:
            parent = stack[-1] if stack else recorder._root
            self._node = parent.child(self._name)
        stack.append(self._node)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        elapsed = time.perf_counter() - self._start
        recorder = self._recorder
        stack = recorder._span_stack()
        if stack and stack[-1] is self._node:
            stack.pop()
        with recorder._lock:
            assert self._node is not None
            self._node.count += 1
            self._node.total_s += elapsed
        return False


class _NullSpan:
    """Shared do-nothing context manager for disabled instrumentation."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Recorder:
    """Live, thread-safe metrics registry (see module docstring)."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._root = SpanNode("")
        self._counters: Dict[str, Union[int, float]] = {}
        self._gauges: Dict[str, float] = {}
        self._meters: Dict[str, ConvergenceStat] = {}

    # -- spans ----------------------------------------------------------
    def _span_stack(self) -> List[SpanNode]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str) -> _SpanContext:
        """``with recorder.span("dictionary.build"): ...``"""
        return _SpanContext(self, name)

    def span_depth(self) -> int:
        """Deepest nesting level currently recorded."""
        with self._lock:
            return self._root.depth()

    # -- counters / gauges ----------------------------------------------
    def count(self, name: str, value: Union[int, float] = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def counter_value(self, name: str) -> Union[int, float]:
        with self._lock:
            return self._counters.get(name, 0)

    # -- convergence meters ---------------------------------------------
    def observe(
        self,
        name: str,
        values: Union[np.ndarray, float],
        weights: Optional[np.ndarray] = None,
    ) -> None:
        """Feed Monte-Carlo samples into the named convergence meter."""
        with self._lock:
            meter = self._meters.get(name)
            if meter is None:
                meter = self._meters[name] = ConvergenceStat()
            meter.update(values, weights)

    def meter(self, name: str) -> Optional[ConvergenceStat]:
        with self._lock:
            return self._meters.get(name)

    # -- snapshot / merge ------------------------------------------------
    def snapshot(self) -> Dict:
        """JSON-ready copy of everything recorded so far."""
        with self._lock:
            return {
                "spans": [
                    self._root.children[name].to_payload()
                    for name in sorted(self._root.children)
                ],
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "convergence": {
                    name: meter.to_payload()
                    for name, meter in sorted(self._meters.items())
                },
            }

    def merge(self, snapshot: Optional[Dict]) -> None:
        """Fold a worker shard's :meth:`snapshot` payload into this one.

        Spans and counters accumulate, gauges last-write-win, convergence
        meters merge exactly (shard-order independent up to float
        associativity of the merged moments).
        """
        if not snapshot:
            return
        with self._lock:
            for span_payload in snapshot.get("spans", ()):
                self._root.child(str(span_payload["name"])).merge_payload(
                    span_payload
                )
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, value in snapshot.get("gauges", {}).items():
                self._gauges[name] = float(value)
            for name, payload in snapshot.get("convergence", {}).items():
                meter = self._meters.get(name)
                if meter is None:
                    meter = self._meters[name] = ConvergenceStat()
                meter.merge(payload)

    def reset(self) -> None:
        with self._lock:
            self._root = SpanNode("")
            self._counters.clear()
            self._gauges.clear()
            self._meters.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        snap = self.snapshot()
        return (
            f"Recorder(spans={len(snap['spans'])}, "
            f"counters={len(snap['counters'])}, "
            f"meters={len(snap['convergence'])})"
        )


class NullRecorder(Recorder):
    """Disabled instrumentation: every operation is a constant no-op.

    The hot paths guard per-sample work behind ``recorder.enabled``, but
    even unguarded calls (span entry, counter bumps) must stay cheap —
    this class never takes a lock, never allocates, never reads a clock.
    """

    enabled = False

    def __init__(self) -> None:  # deliberately no parent __init__: no state
        pass

    def span(self, name: str) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def span_depth(self) -> int:
        return 0

    def count(self, name: str, value: Union[int, float] = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def counter_value(self, name: str) -> Union[int, float]:
        return 0

    def observe(self, name, values, weights=None) -> None:
        pass

    def meter(self, name: str) -> None:
        return None

    def snapshot(self) -> Dict:
        return {"spans": [], "counters": {}, "gauges": {}, "convergence": {}}

    def merge(self, snapshot: Optional[Dict]) -> None:
        pass

    def reset(self) -> None:
        pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullRecorder()"
