"""Monte-Carlo convergence accounting: running mean/variance meters.

Every probability this reproduction reports is a Monte-Carlo estimate —
critical probabilities are means of per-sample Bernoulli outcomes, settle
times are sample vectors over the circuit-instance population.  A
:class:`ConvergenceStat` tracks such a stream incrementally (numerically
stable Welford/Chan updates, merged batch-at-a-time) and answers the
estimator-quality questions the importance-sampling roadmap items (ISLE,
EffiTest — see PAPERS.md) will ask of every estimator:

* running **mean** and (reliability-weighted, unbiased) **variance**,
* **standard error** of the mean,
* **effective sample count** ``ESS = (sum w)^2 / sum w^2`` — equal to the
  raw draw count for unit weights, smaller for skewed importance weights.

Meters are plain value objects; thread safety is the owning
:class:`repro.obs.Recorder`'s job.  Two meters (or a meter and its
serialized payload, e.g. shipped back from a worker process) merge
exactly: updating in one stream or in shards is the same statistic.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Union

import numpy as np

__all__ = ["ConvergenceStat"]


class ConvergenceStat:
    """Weighted running mean/variance over a sample stream."""

    __slots__ = ("n", "wsum", "wsum2", "mean", "m2")

    def __init__(self) -> None:
        self.n = 0  # raw draw count
        self.wsum = 0.0  # sum of weights
        self.wsum2 = 0.0  # sum of squared weights
        self.mean = 0.0
        self.m2 = 0.0  # sum of w * (x - mean)^2

    # -- updates --------------------------------------------------------
    def update(
        self,
        values: Union[np.ndarray, float],
        weights: Optional[np.ndarray] = None,
    ) -> None:
        """Fold a batch of samples (optionally weighted) into the stat."""
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            return
        if weights is None:
            batch_w = float(values.size)
            batch_w2 = float(values.size)
            batch_mean = float(values.mean())
            batch_m2 = float(((values - batch_mean) ** 2).sum())
        else:
            weights = np.asarray(weights, dtype=float).ravel()
            if weights.shape != values.shape:
                raise ValueError("weights must match values in shape")
            if (weights < 0).any():
                raise ValueError("weights must be non-negative")
            batch_w = float(weights.sum())
            if batch_w == 0.0:
                return
            batch_w2 = float((weights**2).sum())
            batch_mean = float((weights * values).sum() / batch_w)
            batch_m2 = float((weights * (values - batch_mean) ** 2).sum())
        self._merge_moments(values.size, batch_w, batch_w2, batch_mean, batch_m2)

    def merge(self, other: Union["ConvergenceStat", Dict]) -> None:
        """Fold another stat (or its :meth:`to_payload`) into this one."""
        if isinstance(other, dict):
            self._merge_moments(
                int(other["count"]),
                float(other["wsum"]),
                float(other["wsum2"]),
                float(other["mean"]),
                float(other["m2"]),
            )
        else:
            self._merge_moments(other.n, other.wsum, other.wsum2,
                                other.mean, other.m2)

    def _merge_moments(
        self, n: int, wsum: float, wsum2: float, mean: float, m2: float
    ) -> None:
        if wsum <= 0.0:
            return
        total = self.wsum + wsum
        delta = mean - self.mean
        # Chan et al. pairwise-merge form of Welford's update.
        self.m2 += m2 + delta * delta * self.wsum * wsum / total
        self.mean += delta * wsum / total
        self.wsum = total
        self.wsum2 += wsum2
        self.n += n

    # -- derived quantities ---------------------------------------------
    @property
    def count(self) -> int:
        return self.n

    @property
    def ess(self) -> float:
        """Effective sample count ``(sum w)^2 / sum w^2``."""
        if self.wsum2 == 0.0:
            return 0.0
        return self.wsum * self.wsum / self.wsum2

    @property
    def variance(self) -> float:
        """Unbiased (reliability-weighted) sample variance."""
        denominator = self.wsum - self.wsum2 / self.wsum if self.wsum else 0.0
        if denominator <= 0.0:
            return 0.0
        return self.m2 / denominator

    @property
    def std_error(self) -> float:
        """Standard error of the running mean: ``sqrt(var / ESS)``."""
        ess = self.ess
        if ess <= 0.0:
            return 0.0
        return math.sqrt(self.variance / ess)

    # -- serialization --------------------------------------------------
    def to_payload(self) -> Dict[str, float]:
        """JSON-ready view carrying both raw moments (for exact merging)
        and the derived estimator-quality numbers."""
        return {
            "count": self.n,
            "wsum": self.wsum,
            "wsum2": self.wsum2,
            "mean": self.mean,
            "m2": self.m2,
            "variance": self.variance,
            "std_error": self.std_error,
            "ess": self.ess,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConvergenceStat(n={self.n}, mean={self.mean:.6g}, "
            f"se={self.std_error:.3g}, ess={self.ess:.1f})"
        )
