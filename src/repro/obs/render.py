"""Human-readable rendering of a metrics snapshot (for ``repro profile``)."""

from __future__ import annotations

from typing import Dict, List

__all__ = ["render_metrics_text"]


def _render_span(node: Dict, indent: int, lines: List[str]) -> None:
    total_ms = 1000.0 * float(node.get("total_s", 0.0))
    lines.append(
        f"  {'  ' * indent}{node['name']:<{max(2, 38 - 2 * indent)}s} "
        f"x{node.get('count', 0):<5d} {total_ms:9.2f} ms"
    )
    for child in node.get("children", ()):
        _render_span(child, indent + 1, lines)


def render_metrics_text(snapshot: Dict) -> str:
    """Span tree, counters, gauges and convergence meters as plain text."""
    lines: List[str] = []
    spans = snapshot.get("spans", [])
    if spans:
        lines.append("spans:")
        for node in spans:
            _render_span(node, 0, lines)
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            value = counters[name]
            rendered = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name:<40s} {rendered}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:<40s} {gauges[name]:g}")
    convergence = snapshot.get("convergence", {})
    if convergence:
        lines.append("convergence:")
        for name in sorted(convergence):
            meter = convergence[name]
            lines.append(
                f"  {name:<28s} n={meter['count']:<8d} "
                f"mean={meter['mean']:<12.6g} se={meter['std_error']:<10.3g} "
                f"ess={meter['ess']:.1f}"
            )
    if not lines:
        return "(no metrics recorded)"
    return "\n".join(lines)
