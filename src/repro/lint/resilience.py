"""R6xx rules: audit resilience checkpoint files.

``--resume`` trusts whatever ``--checkpoint DIR`` holds, so CI gates the
archived checkpoint artifact the same way ``S5xx`` gates run manifests: a
checkpoint that cannot be read (R601), violates the shipped schema or its
own checksum (R602), or whose state disagrees with its progress header
(R603) would make a resume fail — or worse, silently drop trials.  A
stray atomic-writer temp file (R604) marks a writer that died between
``mkstemp`` and ``os.replace``.
"""

from __future__ import annotations

import json
import os
from typing import List

from ..resilience.checkpoint import TMP_PREFIX, validate_checkpoint
from .diagnostics import Diagnostic, Severity

__all__ = ["check_checkpoint", "check_checkpoint_dir"]


def check_checkpoint(path: str) -> List[Diagnostic]:
    """Audit one checkpoint file; returns R60x findings (empty == clean)."""
    anchor = f"checkpoint:{path}"
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        return [
            Diagnostic(
                rule="R601",
                severity=Severity.ERROR,
                message=f"cannot read checkpoint: {exc}",
                obj=anchor,
                engine="model",
            )
        ]
    problems = validate_checkpoint(payload)
    if problems:
        return [
            Diagnostic(
                rule="R602",
                severity=Severity.ERROR,
                message=f"checkpoint schema violation: {problem}",
                obj=anchor,
                engine="model",
            )
            for problem in problems
        ]
    findings: List[Diagnostic] = []
    completed = payload["progress"]["completed"]
    state = payload["state"]
    if payload["kind"] == "evaluation":
        records = state.get("records")
        if not isinstance(records, list) or len(records) != completed:
            count = len(records) if isinstance(records, list) else "no"
            findings.append(
                Diagnostic(
                    rule="R603",
                    severity=Severity.ERROR,
                    message=(
                        f"state holds {count} trial record(s) but progress "
                        f"says {completed} completed — resuming would drop "
                        "or duplicate trials"
                    ),
                    obj=anchor,
                    engine="model",
                )
            )
        if completed and not isinstance(state.get("rng_state"), dict):
            findings.append(
                Diagnostic(
                    rule="R603",
                    severity=Severity.ERROR,
                    message="state carries completed trials but no RNG "
                    "state — the resumed stream could not continue "
                    "bit-identically",
                    obj=anchor,
                    engine="model",
                )
            )
    return findings


def check_checkpoint_dir(directory: str) -> List[Diagnostic]:
    """Audit a checkpoint directory: every ``*.json`` plus stray temps."""
    anchor = f"checkpoint-dir:{directory}"
    try:
        names = sorted(os.listdir(directory))
    except OSError as exc:
        return [
            Diagnostic(
                rule="R601",
                severity=Severity.ERROR,
                message=f"cannot list checkpoint directory: {exc}",
                obj=anchor,
                engine="model",
            )
        ]
    findings: List[Diagnostic] = []
    for name in names:
        path = os.path.join(directory, name)
        if name.startswith(TMP_PREFIX):
            findings.append(
                Diagnostic(
                    rule="R604",
                    severity=Severity.WARNING,
                    message="stray atomic-writer temp file (interrupted "
                    "between mkstemp and rename); safe to delete",
                    obj=f"checkpoint:{path}",
                    engine="model",
                )
            )
        elif name.endswith(".json"):
            findings.extend(check_checkpoint(path))
    return findings
