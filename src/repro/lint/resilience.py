"""R6xx rules: audit resilience checkpoint files.

``--resume`` trusts whatever ``--checkpoint DIR`` holds, so CI gates the
archived checkpoint artifact the same way ``S5xx`` gates run manifests: a
checkpoint that cannot be read (R601), violates the shipped schema or its
own checksum (R602), or whose state disagrees with its progress header
(R603) would make a resume fail — or worse, silently drop trials.  A
stray atomic-writer temp file (R604) marks a writer that died between
``mkstemp`` and ``os.replace``.

R605 pins the *service wire-error taxonomy* instead of an artifact on
disk: deployed clients dispatch on ``error.type`` tags, so
``repro.service.errors.WIRE_TYPES`` is append-only protocol.  The
baseline below is the released prefix — a tag may never be removed,
re-typed, or reordered; new tags go strictly at the end.
"""

from __future__ import annotations

import json
import os
from typing import List, Mapping, Optional, Sequence, Tuple

from ..resilience.checkpoint import TMP_PREFIX, validate_checkpoint
from .diagnostics import Diagnostic, Severity

__all__ = [
    "WIRE_TAXONOMY_BASELINE",
    "check_checkpoint",
    "check_checkpoint_dir",
    "check_wire_taxonomy",
]

# The released wire-tag prefix, in protocol order.  Append new
# (tag, exception-class-name) pairs here in the SAME commit that appends
# them to repro.service.errors.WIRE_TYPES — never edit existing entries.
WIRE_TAXONOMY_BASELINE: Tuple[Tuple[str, str], ...] = (
    ("bad_request", "BadRequestError"),
    ("unknown_workload", "UnknownWorkloadError"),
    ("overloaded", "QueueFullError"),
    ("timeout", "RequestTimeoutError"),
    ("connection", "ServiceConnectionError"),
    ("internal", "ServiceError"),
    ("draining", "ServiceDrainingError"),
    ("reload_failed", "WorkloadReloadError"),
)


def _class_name(value) -> str:
    return value if isinstance(value, str) else getattr(
        value, "__name__", str(value)
    )


def check_wire_taxonomy(
    wire_types: Optional[Mapping[str, object]] = None,
) -> List[Diagnostic]:
    """Audit the wire-error taxonomy against the pinned baseline (R605).

    ``wire_types`` defaults to the live
    :data:`repro.service.errors.WIRE_TYPES`; tests may inject a mapping
    of tag -> exception class (or class name) to exercise regressions.
    The mapping's insertion order is the protocol order.
    """
    if wire_types is None:
        from ..service.errors import WIRE_TYPES as wire_types  # type: ignore

    anchor = "wire-taxonomy:repro.service.errors.WIRE_TYPES"
    current: Sequence[Tuple[str, str]] = [
        (tag, _class_name(cls)) for tag, cls in wire_types.items()
    ]
    by_tag = dict(current)
    findings: List[Diagnostic] = []
    for tag, class_name in WIRE_TAXONOMY_BASELINE:
        if tag not in by_tag:
            findings.append(
                Diagnostic(
                    rule="R605",
                    severity=Severity.ERROR,
                    message=(
                        f"released wire tag {tag!r} was removed — deployed "
                        "clients dispatching on it would fall back to "
                        "untyped handling"
                    ),
                    obj=anchor,
                    engine="model",
                )
            )
        elif by_tag[tag] != class_name:
            findings.append(
                Diagnostic(
                    rule="R605",
                    severity=Severity.ERROR,
                    message=(
                        f"released wire tag {tag!r} changed exception class "
                        f"({class_name} -> {by_tag[tag]}) — retry/exit-code "
                        "semantics keyed on the type would silently change"
                    ),
                    obj=anchor,
                    engine="model",
                )
            )
    # Order: every baseline tag still present must appear in baseline
    # order, before any tag the baseline does not know (append-only).
    surviving = [tag for tag, _ in WIRE_TAXONOMY_BASELINE if tag in by_tag]
    positions = {tag: i for i, (tag, _) in enumerate(current)}
    expected = sorted(surviving, key=lambda tag: positions[tag])
    if surviving != expected:
        findings.append(
            Diagnostic(
                rule="R605",
                severity=Severity.ERROR,
                message=(
                    "released wire tags were reordered "
                    f"(baseline order {surviving} vs current order "
                    f"{expected}) — protocol order is part of the contract"
                ),
                obj=anchor,
                engine="model",
            )
        )
    elif surviving and current:
        new_tags = [tag for tag, _ in current if tag not in dict(
            WIRE_TAXONOMY_BASELINE
        )]
        last_known = positions[surviving[-1]]
        interleaved = [tag for tag in new_tags if positions[tag] < last_known]
        if interleaved:
            findings.append(
                Diagnostic(
                    rule="R605",
                    severity=Severity.ERROR,
                    message=(
                        f"new wire tag(s) {interleaved} were inserted "
                        "before released tags — append new tags strictly "
                        "at the end"
                    ),
                    obj=anchor,
                    engine="model",
                )
            )
    return findings


def check_checkpoint(path: str) -> List[Diagnostic]:
    """Audit one checkpoint file; returns R60x findings (empty == clean)."""
    anchor = f"checkpoint:{path}"
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        return [
            Diagnostic(
                rule="R601",
                severity=Severity.ERROR,
                message=f"cannot read checkpoint: {exc}",
                obj=anchor,
                engine="model",
            )
        ]
    problems = validate_checkpoint(payload)
    if problems:
        return [
            Diagnostic(
                rule="R602",
                severity=Severity.ERROR,
                message=f"checkpoint schema violation: {problem}",
                obj=anchor,
                engine="model",
            )
            for problem in problems
        ]
    findings: List[Diagnostic] = []
    completed = payload["progress"]["completed"]
    state = payload["state"]
    if payload["kind"] == "evaluation":
        records = state.get("records")
        if not isinstance(records, list) or len(records) != completed:
            count = len(records) if isinstance(records, list) else "no"
            findings.append(
                Diagnostic(
                    rule="R603",
                    severity=Severity.ERROR,
                    message=(
                        f"state holds {count} trial record(s) but progress "
                        f"says {completed} completed — resuming would drop "
                        "or duplicate trials"
                    ),
                    obj=anchor,
                    engine="model",
                )
            )
        if completed and not isinstance(state.get("rng_state"), dict):
            findings.append(
                Diagnostic(
                    rule="R603",
                    severity=Severity.ERROR,
                    message="state carries completed trials but no RNG "
                    "state — the resumed stream could not continue "
                    "bit-identically",
                    obj=anchor,
                    engine="model",
                )
            )
    return findings


def check_checkpoint_dir(directory: str) -> List[Diagnostic]:
    """Audit a checkpoint directory: every ``*.json`` plus stray temps."""
    anchor = f"checkpoint-dir:{directory}"
    try:
        names = sorted(os.listdir(directory))
    except OSError as exc:
        return [
            Diagnostic(
                rule="R601",
                severity=Severity.ERROR,
                message=f"cannot list checkpoint directory: {exc}",
                obj=anchor,
                engine="model",
            )
        ]
    findings: List[Diagnostic] = []
    for name in names:
        path = os.path.join(directory, name)
        if name.startswith(TMP_PREFIX):
            findings.append(
                Diagnostic(
                    rule="R604",
                    severity=Severity.WARNING,
                    message="stray atomic-writer temp file (interrupted "
                    "between mkstemp and rename); safe to delete",
                    obj=f"checkpoint:{path}",
                    engine="model",
                )
            )
        elif name.endswith(".json"):
            findings.extend(check_checkpoint(path))
    return findings
