"""Diagnostic primitives shared by both lint engines.

A :class:`Diagnostic` is one finding: a stable rule ID (``D1xx``
determinism / ``C2xx`` circuit / ``T3xx`` timing / ``S4xx``
suspects-dictionary-cache / ``S5xx`` observability manifests / ``R6xx``
resilience checkpoints / ``F7xx`` interprocedural determinism / ``P8xx``
pool-worker safety / ``K9xx`` cache-key completeness), a severity, a
human message and an anchor —
``path``/``line`` for code findings, ``obj`` (e.g. ``"circuit:s1196"`` or
``"edge:a->b[0]"``) for model findings.  :class:`LintReport` aggregates
findings, applies per-rule suppression, and renders the two output formats:

* text — ``path:line: [ID] severity: message`` (clickable in editors),
* JSON — the machine-readable payload consumed by CI; its shape is pinned
  by :data:`REPORT_SCHEMA` and enforced by :func:`validate_report_payload`
  (hand-rolled so no third-party ``jsonschema`` dependency is needed).
"""

from __future__ import annotations

import enum
import fnmatch
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

__all__ = [
    "Severity",
    "Diagnostic",
    "LintReport",
    "SCHEMA_VERSION",
    "REPORT_SCHEMA",
    "validate_report_payload",
    "parse_suppressions",
]

#: Bumped whenever the JSON payload shape changes incompatibly.
#: v2: diagnostics are sorted by (path, line, rule) — not severity-first —
#: so CI diffs are stable, and ``engine`` admits ``"flow"``.
SCHEMA_VERSION = 2

_RULE_ID_RE = re.compile(r"^(?:[DCTS][1-5]|R6|F7|P8|K9)\d{2}$")


class Severity(enum.Enum):
    """Finding severity; only ``ERROR`` fails the lint gate."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding with a stable rule ID."""

    rule: str
    severity: Severity
    message: str
    path: Optional[str] = None
    line: Optional[int] = None
    obj: Optional[str] = None
    engine: str = "code"  # "code" | "model" | "flow"

    def __post_init__(self) -> None:
        if not _RULE_ID_RE.match(self.rule):
            raise ValueError(f"malformed rule id {self.rule!r}")

    def anchor(self) -> str:
        if self.path is not None:
            line = self.line if self.line is not None else 0
            return f"{self.path}:{line}"
        return self.obj or "<model>"

    def format_text(self) -> str:
        return (
            f"{self.anchor()}: [{self.rule}] {self.severity.value}: "
            f"{self.message}"
        )

    def to_payload(self) -> Dict:
        payload = {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "engine": self.engine,
        }
        if self.path is not None:
            payload["path"] = self.path
        if self.line is not None:
            payload["line"] = int(self.line)
        if self.obj is not None:
            payload["object"] = self.obj
        return payload


def parse_suppressions(spec: Optional[str]) -> List[str]:
    """Parse ``"D101,C2*"``-style suppression specs (IDs or glob patterns)."""
    if not spec:
        return []
    return [part.strip() for part in spec.split(",") if part.strip()]


def _suppressed(rule: str, patterns: Sequence[str]) -> bool:
    return any(fnmatch.fnmatchcase(rule, pattern) for pattern in patterns)


@dataclass
class LintReport:
    """Aggregated findings from one lint run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    suppressed: int = 0

    def extend(
        self, findings: Iterable[Diagnostic], suppress: Sequence[str] = ()
    ) -> None:
        for diagnostic in findings:
            if _suppressed(diagnostic.rule, suppress):
                self.suppressed += 1
            else:
                self.diagnostics.append(diagnostic)

    # -- summaries ------------------------------------------------------
    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity)

    @property
    def errors(self) -> int:
        return self.count(Severity.ERROR)

    @property
    def warnings(self) -> int:
        return self.count(Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when the gate passes (warnings and infos do not fail it)."""
        return self.errors == 0

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for diagnostic in self.diagnostics:
            counts[diagnostic.rule] = counts.get(diagnostic.rule, 0) + 1
        return counts

    # -- rendering ------------------------------------------------------
    def sorted_diagnostics(self) -> List[Diagnostic]:
        """Stable (path, line, rule) order — pinned by the JSON schema
        test so CI report diffs are deterministic across Python versions
        (model findings without a path sort last, by object anchor)."""
        return sorted(
            self.diagnostics,
            key=lambda d: (d.path or "~", d.line or 0, d.rule,
                           d.obj or "", d.severity.rank),
        )

    def format_text(self) -> str:
        lines = [d.format_text() for d in self.sorted_diagnostics()]
        lines.append(
            f"lint: {self.errors} error(s), {self.warnings} warning(s), "
            f"{self.count(Severity.INFO)} info(s), "
            f"{self.suppressed} suppressed"
        )
        return "\n".join(lines)

    def to_payload(self) -> Dict:
        return {
            "version": SCHEMA_VERSION,
            "ok": self.ok,
            "summary": {
                "errors": self.errors,
                "warnings": self.warnings,
                "infos": self.count(Severity.INFO),
                "suppressed": self.suppressed,
            },
            "diagnostics": [
                d.to_payload() for d in self.sorted_diagnostics()
            ],
        }


#: Documented shape of :meth:`LintReport.to_payload` (JSON-Schema subset).
REPORT_SCHEMA: Dict = {
    "type": "object",
    "required": ["version", "ok", "summary", "diagnostics"],
    "properties": {
        "version": {"type": "integer", "const": SCHEMA_VERSION},
        "ok": {"type": "boolean"},
        "summary": {
            "type": "object",
            "required": ["errors", "warnings", "infos", "suppressed"],
            "properties": {
                "errors": {"type": "integer", "minimum": 0},
                "warnings": {"type": "integer", "minimum": 0},
                "infos": {"type": "integer", "minimum": 0},
                "suppressed": {"type": "integer", "minimum": 0},
            },
        },
        "diagnostics": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["rule", "severity", "message", "engine"],
                "properties": {
                    "rule": {"type": "string", "pattern": _RULE_ID_RE.pattern},
                    "severity": {"enum": ["error", "warning", "info"]},
                    "message": {"type": "string"},
                    "engine": {"enum": ["code", "model", "flow"]},
                    "path": {"type": "string"},
                    "line": {"type": "integer", "minimum": 1},
                    "object": {"type": "string"},
                },
            },
        },
    },
}


def validate_report_payload(payload: Dict) -> None:
    """Raise ``ValueError`` unless ``payload`` matches :data:`REPORT_SCHEMA`.

    Minimal hand-rolled validator (no external jsonschema dependency);
    covers exactly the constraints the documented schema states.
    """

    def fail(message: str) -> None:
        raise ValueError(f"lint report payload invalid: {message}")

    if not isinstance(payload, dict):
        fail("top level is not an object")
    for key in ("version", "ok", "summary", "diagnostics"):
        if key not in payload:
            fail(f"missing key {key!r}")
    if payload["version"] != SCHEMA_VERSION:
        fail(f"unsupported version {payload['version']!r}")
    if not isinstance(payload["ok"], bool):
        fail("'ok' is not a boolean")
    summary = payload["summary"]
    if not isinstance(summary, dict):
        fail("'summary' is not an object")
    for key in ("errors", "warnings", "infos", "suppressed"):
        value = summary.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            fail(f"summary[{key!r}] is not a non-negative integer")
    diagnostics = payload["diagnostics"]
    if not isinstance(diagnostics, list):
        fail("'diagnostics' is not an array")
    for index, entry in enumerate(diagnostics):
        where = f"diagnostics[{index}]"
        if not isinstance(entry, dict):
            fail(f"{where} is not an object")
        for key in ("rule", "severity", "message", "engine"):
            if key not in entry:
                fail(f"{where} missing key {key!r}")
        if not isinstance(entry["rule"], str) or not _RULE_ID_RE.match(entry["rule"]):
            fail(f"{where} has malformed rule id {entry.get('rule')!r}")
        if entry["severity"] not in ("error", "warning", "info"):
            fail(f"{where} has unknown severity {entry['severity']!r}")
        if entry["engine"] not in ("code", "model", "flow"):
            fail(f"{where} has unknown engine {entry['engine']!r}")
        if not isinstance(entry["message"], str):
            fail(f"{where} message is not a string")
        if "line" in entry and (
            not isinstance(entry["line"], int)
            or isinstance(entry["line"], bool)
            or entry["line"] < 1
        ):
            fail(f"{where} line is not a positive integer")
        for key in ("path", "object"):
            if key in entry and not isinstance(entry[key], str):
                fail(f"{where} {key} is not a string")
    if payload["ok"] != (summary["errors"] == 0):
        fail("'ok' inconsistent with summary.errors")
