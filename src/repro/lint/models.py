"""Semantic model checker (rules ``C2xx`` / ``T3xx`` / ``S4xx``).

Checks the *artifacts* the diagnosis flow consumes rather than the code
that builds them: netlists, statistical cell libraries, materialized
timing models, suspect sets and the on-disk dictionary cache.  Subsumes
(and extends) the original flat ``circuits/validate.py`` checks; that
module survives as a thin deprecated wrapper over :func:`check_circuit`.

All checkers return plain ``List[Diagnostic]`` so callers can compose
them; :func:`lint_circuit` wraps one circuit's findings in a
:class:`~repro.lint.diagnostics.LintReport` for the common
``assert lint_circuit(c).ok`` test idiom.
"""

from __future__ import annotations

import json
import os
import re
from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from ..circuits.library import GateType
from ..circuits.netlist import Circuit, Edge
from .diagnostics import Diagnostic, LintReport
from .rules import RULES

__all__ = [
    "check_circuit",
    "check_library",
    "check_timing",
    "check_suspects",
    "check_cache",
    "check_benchmark",
    "lint_circuit",
]


def _diag(rule_id: str, message: str, obj: Optional[str] = None) -> Diagnostic:
    return Diagnostic(
        rule=rule_id,
        severity=RULES[rule_id].severity,
        message=message,
        obj=obj,
        engine="model",
    )


# ----------------------------------------------------------------------
# C2xx — netlist structure
# ----------------------------------------------------------------------
def _find_cycle(circuit: Circuit) -> Optional[List[str]]:
    """A combinational cycle (as a net list), or ``None``.

    DFF fanins are next-state references evaluated a clock earlier, so —
    exactly as in ``Circuit._topological_sort`` — they are not
    combinational dependencies and do not close a cycle.
    """
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {name: WHITE for name in circuit.gates}
    stack_trace: List[str] = []

    def deps(name: str) -> List[str]:
        gate = circuit.gates[name]
        if gate.gate_type is GateType.DFF:
            return []
        return [f for f in gate.fanins if f in circuit.gates]

    for root in circuit.gates:
        if color[root] != WHITE:
            continue
        stack: List[tuple] = [(root, iter(deps(root)))]
        color[root] = GRAY
        stack_trace = [root]
        while stack:
            name, children = stack[-1]
            advanced = False
            for child in children:
                if color[child] == GRAY:
                    start = stack_trace.index(child)
                    return stack_trace[start:] + [child]
                if color[child] == WHITE:
                    color[child] = GRAY
                    stack_trace.append(child)
                    stack.append((child, iter(deps(child))))
                    advanced = True
                    break
            if not advanced:
                color[name] = BLACK
                stack_trace.pop()
                stack.pop()
    return None


def check_circuit(
    circuit: Circuit,
    require_observable: bool = True,
    allow_dffs: bool = False,
) -> List[Diagnostic]:
    """Structural netlist checks (rules ``C201``–``C209``).

    ``allow_dffs=True`` skips the scan-view rule ``C204`` — used when
    validating freshly ingested sequential ``.bench`` netlists that will
    be ``unroll_scan()``-ed later.
    """
    obj = f"circuit:{circuit.name}"
    findings: List[Diagnostic] = []

    if not circuit.frozen:
        findings.append(_diag("C201", "circuit is not frozen", obj))

    for gate in circuit:
        for fanin in gate.fanins:
            if fanin not in circuit.gates:
                findings.append(_diag(
                    "C209",
                    f"gate {gate.name!r} fanin {fanin!r} references an "
                    "undeclared net",
                    obj,
                ))

    cycle = _find_cycle(circuit)
    if cycle is not None:
        findings.append(_diag(
            "C208",
            f"combinational cycle through {' -> '.join(cycle)}",
            obj,
        ))

    if not circuit.frozen:
        # Topology queries (edges, cones) are undefined pre-freeze; the
        # construction-time findings above are all that can be checked.
        return findings

    if not circuit.inputs:
        findings.append(_diag("C202", "no primary inputs", obj))
    if not circuit.outputs:
        findings.append(_diag("C203", "no primary outputs", obj))

    for gate in circuit:
        if gate.gate_type is GateType.DFF and not allow_dffs:
            findings.append(_diag(
                "C204",
                f"gate {gate.name!r} is a DFF; call unroll_scan() first",
                obj,
            ))
        if gate.gate_type in (GateType.XOR, GateType.XNOR):
            if len(set(gate.fanins)) != len(gate.fanins):
                findings.append(_diag(
                    "C205",
                    f"XOR-family gate {gate.name!r} has duplicate fanins",
                    obj,
                ))

    if require_observable and circuit.outputs and circuit.inputs:
        observable = set()
        for output in circuit.outputs:
            observable.update(circuit.fanin_cone(output))
        controllable = set()
        for net in circuit.inputs:
            controllable.update(circuit.fanout_cone(net))
        for name in circuit.gates:
            if name not in observable:
                findings.append(_diag(
                    "C207",
                    f"net {name!r} does not reach any primary output",
                    obj,
                ))
            gate = circuit.gates[name]
            if gate.gate_type is not GateType.INPUT and name not in controllable:
                findings.append(_diag(
                    "C206",
                    f"net {name!r} is not reachable from any primary input",
                    obj,
                ))
    return findings


# ----------------------------------------------------------------------
# T3xx — cell library / timing model
# ----------------------------------------------------------------------
def check_library(circuit: Circuit, library=None) -> List[Diagnostic]:
    """Cell-library checks against one circuit (rules ``T301``–``T304``)."""
    from ..timing.celllib import CellLibrary

    library = library or CellLibrary()
    obj = f"library:{circuit.name}"
    findings: List[Diagnostic] = []

    if library.fanin_penalty < 0 or library.load_factor < 0:
        findings.append(_diag(
            "T302",
            f"negative load parameters (fanin_penalty="
            f"{library.fanin_penalty}, load_factor={library.load_factor})",
            obj,
        ))
    if library.sigma_global < 0 or library.sigma_local < 0:
        findings.append(_diag(
            "T302",
            f"negative variation parameters (sigma_global="
            f"{library.sigma_global}, sigma_local={library.sigma_local})",
            obj,
        ))
    elif library.sigma_global == 0 and library.sigma_local == 0:
        findings.append(_diag(
            "T303",
            "zero-variance library (sigma_global = sigma_local = 0): every "
            "delay distribution is degenerate",
            obj,
        ))
    relative_sigma = float(np.hypot(library.sigma_global, library.sigma_local))
    if 3.0 * relative_sigma > 1.0:
        findings.append(_diag(
            "T304",
            f"library 3-sigma ({3.0 * relative_sigma:.2f} x nominal) "
            "exceeds the mean; the positivity floor will truncate the "
            "distributions",
            obj,
        ))

    used_types = {
        gate.gate_type for gate in circuit if gate.gate_type is not GateType.INPUT
    }
    missing = sorted(
        gate_type.value for gate_type in used_types
        if library.base_delays.get(gate_type) is None
    )
    for type_name in missing:
        findings.append(_diag(
            "T301",
            f"gate type {type_name!r} instantiated by the circuit has no "
            "pin-to-pin delay characterization",
            obj,
        ))
    for gate_type in sorted(used_types, key=lambda t: t.value):
        base = library.base_delays.get(gate_type)
        if base is not None and base < 0:
            findings.append(_diag(
                "T302",
                f"negative base delay {base} for gate type "
                f"{gate_type.value!r}",
                obj,
            ))

    if circuit.frozen and not missing:
        pseudo = (GateType.OUTPUT, GateType.DFF)
        for edge in circuit.edges:
            nominal = library.nominal_pin_delay(circuit, edge)
            sink_type = circuit.gates[edge.sink].gate_type
            if nominal < 0:
                findings.append(_diag(
                    "T302",
                    f"edge {edge} has negative nominal delay {nominal:.3f}",
                    obj,
                ))
            elif nominal == 0 and sink_type not in pseudo:
                findings.append(_diag(
                    "T303",
                    f"edge {edge} has zero nominal delay; its distribution "
                    "is degenerate",
                    obj,
                ))
    return findings


def check_timing(timing) -> List[Diagnostic]:
    """Materialized delay-matrix checks (rules ``T304``/``T305``)."""
    circuit = timing.circuit
    obj = f"timing:{circuit.name}"
    findings: List[Diagnostic] = []
    delays = timing.delays

    if not np.all(np.isfinite(delays)):
        rows = np.unique(np.nonzero(~np.isfinite(delays))[0])
        edges = ", ".join(str(circuit.edges[row]) for row in rows[:3])
        findings.append(_diag(
            "T305",
            f"delay matrix contains non-finite samples on {len(rows)} "
            f"edge(s) (e.g. {edges})",
            obj,
        ))
        return findings
    if np.any(delays < 0):
        rows = np.unique(np.nonzero(delays < 0)[0])
        edges = ", ".join(str(circuit.edges[row]) for row in rows[:3])
        findings.append(_diag(
            "T305",
            f"delay matrix contains negative samples on {len(rows)} "
            f"edge(s) (e.g. {edges})",
            obj,
        ))

    means = delays.mean(axis=1)
    stds = delays.std(axis=1)
    positive = means > 0
    heavy = np.nonzero(positive & (3.0 * stds > means))[0]
    if heavy.size:
        edges = ", ".join(str(circuit.edges[row]) for row in heavy[:3])
        findings.append(_diag(
            "T304",
            f"3-sigma exceeds the mean on {heavy.size} of {len(means)} "
            f"edge(s) (e.g. {edges}); the positivity floor distorts those "
            "distributions",
            obj,
        ))
    return findings


# ----------------------------------------------------------------------
# S4xx — suspects / dictionary cache
# ----------------------------------------------------------------------
def check_suspects(
    circuit: Circuit, suspects: Sequence[Edge]
) -> List[Diagnostic]:
    """Suspect-set checks (rules ``S401``/``S402``)."""
    obj = f"suspects:{circuit.name}"
    findings: List[Diagnostic] = []
    known = set(circuit.edges)
    seen = set()
    duplicates = {}
    for suspect in suspects:
        if suspect not in known:
            findings.append(_diag(
                "S401",
                f"suspect {suspect} references an edge absent from the "
                "circuit",
                obj,
            ))
        if suspect in seen:
            duplicates[suspect] = duplicates.get(suspect, 1) + 1
        seen.add(suspect)
    for suspect, count in duplicates.items():
        findings.append(_diag(
            "S402",
            f"suspect {suspect} appears {count} times in the suspect set",
            obj,
        ))
    return findings


_CACHE_FORMAT = "repro-dictionary-cache-v1"

#: A mmap-store payload: ``dict_<key>.<content-digest-12>.npy``.
_STORE_PAYLOAD_RE = re.compile(
    r"^dict_(?P<key>[0-9a-f]+)\.(?P<digest>[0-9a-f]{12})\.npy$"
)


def _check_store_manifest(
    directory: str, name: str, referenced: set
) -> List[Diagnostic]:
    """Audit one ``dict_<key>.json`` store manifest (``S403``/``S407``).

    Shares :func:`repro.core.cache.validate_store_manifest` with the hot
    path, then cross-checks the filename key and the payload file the
    manifest points at (existence, shape/dtype agreement, checksum).
    Valid payload references land in ``referenced`` so the caller can
    flag unreferenced (stale) payloads.
    """
    from ..core.cache import DictionaryStore, validate_store_manifest

    obj = f"cache:{name}"
    path = os.path.join(directory, name)
    try:
        with open(path) as handle:
            meta = json.load(handle)
    except Exception as error:
        return [_diag(
            "S403",
            f"store manifest is unreadable ({type(error).__name__}: "
            f"{error})",
            obj,
        )]
    errors = validate_store_manifest(meta)
    if errors:
        return [_diag("S407", f"manifest schema: {text}", obj)
                for text in errors]
    findings: List[Diagnostic] = []
    filename_key = name[len("dict_"):-len(".json")]
    if meta["key"] != filename_key:
        findings.append(_diag(
            "S407",
            "manifest key does not match its filename (orphaned by a "
            "key-schema change)",
            obj,
        ))
        return findings
    payload_path = os.path.join(directory, meta["payload"])
    if not os.path.isfile(payload_path):
        findings.append(_diag(
            "S407",
            f"manifest points at missing payload {meta['payload']!r} "
            "(stale pointer — or a rewrite is racing the audit)",
            obj,
        ))
        return findings
    referenced.add(meta["payload"])
    try:
        stack = np.load(payload_path, mmap_mode="r", allow_pickle=False)
        if tuple(stack.shape) != tuple(meta["shape"]):
            findings.append(_diag(
                "S403",
                f"payload shape {tuple(stack.shape)} disagrees with "
                f"manifest {tuple(meta['shape'])}",
                obj,
            ))
        elif str(stack.dtype) != meta["dtype"]:
            findings.append(_diag(
                "S403",
                f"payload dtype {stack.dtype} disagrees with manifest "
                f"{meta['dtype']!r}",
                obj,
            ))
        elif DictionaryStore._stack_checksum(stack) != meta["checksum"]:
            findings.append(_diag(
                "S403",
                "payload checksum mismatch (bit rot or truncated write)",
                obj,
            ))
    except Exception as error:
        findings.append(_diag(
            "S403",
            f"payload is unreadable ({type(error).__name__}: {error})",
            obj,
        ))
    return findings


def check_cache(cache_or_dir) -> List[Diagnostic]:
    """Read-only audit of a dictionary-cache directory (``S403``–``S407``).

    Covers both on-disk layouts: legacy ``dict_<key>.npz`` blobs
    (``S403``–``S405``) and the mmap store's manifest + payload pairs
    (``S403``/``S405``/``S407``).  Unlike the hot-path loaders — which
    delete bad entries — the audit never modifies the directory; it only
    reports.
    """
    from ..core.cache import (
        DictionaryCache,
        DictionaryStore,
        _payload_checksum,
    )

    if isinstance(cache_or_dir, (DictionaryCache, DictionaryStore)):
        directory = cache_or_dir.directory
    else:
        directory = os.fspath(cache_or_dir)
    findings: List[Diagnostic] = []
    if not os.path.isdir(directory):
        return findings
    names = sorted(os.listdir(directory))
    referenced: set = set()
    payload_names = [
        name for name in names if _STORE_PAYLOAD_RE.match(name)
    ]
    for name in names:
        path = os.path.join(directory, name)
        obj = f"cache:{name}"
        if name.startswith((".tmp_dict_", ".tmp_store_")):
            findings.append(_diag(
                "S405",
                "leftover temp file from an interrupted cache writer",
                obj,
            ))
            continue
        if name.startswith("dict_") and name.endswith(".json"):
            findings.extend(_check_store_manifest(directory, name, referenced))
            continue
        if name in payload_names:
            continue  # orphan status decided after every manifest is read
        if not (name.startswith("dict_") and name.endswith(".npz")):
            if os.path.isfile(path):
                findings.append(_diag(
                    "S405",
                    "foreign file in the cache directory; no load will "
                    "ever consult it",
                    obj,
                ))
            continue
        filename_key = name[len("dict_"):-len(".npz")]
        try:
            with np.load(path, allow_pickle=False) as archive:
                meta = json.loads(str(archive["meta"]))
                fmt = meta.get("format")
                if fmt != _CACHE_FORMAT:
                    findings.append(_diag(
                        "S404",
                        f"entry carries format {fmt!r}, expected "
                        f"{_CACHE_FORMAT!r} (written by an incompatible "
                        "revision)",
                        obj,
                    ))
                    continue
                if meta.get("key") != filename_key:
                    findings.append(_diag(
                        "S404",
                        "entry key does not match its filename (orphaned "
                        "by a key-schema change)",
                        obj,
                    ))
                    continue
                n_suspects = int(meta["n_suspects"])
                m_crt = archive["m_crt"]
                signatures = [
                    archive[f"sig_{index:05d}"] for index in range(n_suspects)
                ]
            if _payload_checksum(m_crt, signatures) != meta["checksum"]:
                findings.append(_diag(
                    "S403", "payload checksum mismatch (bit rot or "
                    "truncated write)", obj,
                ))
        except Exception as error:
            findings.append(_diag(
                "S403",
                f"entry is unreadable ({type(error).__name__}: {error})",
                obj,
            ))
    for name in payload_names:
        if name not in referenced:
            findings.append(_diag(
                "S405",
                "store payload not referenced by any manifest (stale "
                "after a rewrite, or its manifest never landed)",
                obj=f"cache:{name}",
            ))
    return findings


# ----------------------------------------------------------------------
# composition helpers
# ----------------------------------------------------------------------
def lint_circuit(
    circuit: Circuit,
    require_observable: bool = True,
    allow_dffs: bool = False,
) -> LintReport:
    """One circuit's structural findings as a gateable report."""
    report = LintReport()
    report.extend(check_circuit(
        circuit, require_observable=require_observable, allow_dffs=allow_dffs
    ))
    return report


def check_benchmark(
    name: str, seed: int = 0, n_samples: int = 16
) -> List[Diagnostic]:
    """Full model audit of one shipped benchmark circuit.

    Loads the scan view, then checks structure, the default cell library
    against it, and a small materialized timing model (``n_samples`` keeps
    the delay-matrix audit cheap; the checks are per-edge moments, which
    converge long before diagnosis-grade sample counts).
    """
    from ..circuits.benchmarks import load_benchmark
    from ..timing.instance import CircuitTiming
    from ..timing.randvars import SampleSpace

    circuit = load_benchmark(name, seed=seed)
    findings = check_circuit(circuit)
    findings.extend(check_library(circuit))
    if not any(d.rule in ("T301", "C201") for d in findings):
        timing = CircuitTiming(circuit, SampleSpace(n_samples=n_samples, seed=seed))
        findings.extend(check_timing(timing))
    return findings
