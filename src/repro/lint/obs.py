"""S5xx rules: audit observability run manifests (:mod:`repro.obs`).

CI archives one manifest per profiled workload; this engine gates that
artifact the same way ``S4xx`` gates the dictionary cache — a manifest
that cannot be read (S501), violates the shipped schema (S502), or is
schema-valid but empty (S503) means the profiling leg silently broke.
"""

from __future__ import annotations

import json
from typing import List

from ..obs.manifest import span_tree_depth, validate_manifest
from .diagnostics import Diagnostic, Severity

__all__ = ["check_manifest"]


def check_manifest(path: str) -> List[Diagnostic]:
    """Audit one run-manifest file; returns S5xx findings (empty == clean)."""
    anchor = f"manifest:{path}"
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        return [
            Diagnostic(
                rule="S501",
                severity=Severity.ERROR,
                message=f"cannot read run manifest: {exc}",
                obj=anchor,
                engine="model",
            )
        ]
    findings: List[Diagnostic] = []
    errors = validate_manifest(payload)
    for error in errors:
        findings.append(
            Diagnostic(
                rule="S502",
                severity=Severity.ERROR,
                message=f"manifest schema violation: {error}",
                obj=anchor,
                engine="model",
            )
        )
    if errors:
        return findings
    metrics = payload.get("metrics", {})
    if span_tree_depth(metrics) == 0 and not metrics.get("counters"):
        findings.append(
            Diagnostic(
                rule="S503",
                severity=Severity.WARNING,
                message="manifest records no spans and no counters "
                "(was the recorder installed for this run?)",
                obj=anchor,
                engine="model",
            )
        )
    return findings
