"""The rule catalog: every stable rule ID the subsystem can emit.

ID ranges are namespaced by layer so a rule's number alone tells you what
it checks and which engine produced it:

* ``D1xx`` — determinism hazards in the *codebase* (AST engine,
  :mod:`repro.lint.determinism`),
* ``C2xx`` — circuit/netlist structure (model engine,
  :mod:`repro.lint.models`),
* ``T3xx`` — timing / cell-library characterization (model engine;
  ``T310`` is the one code-engine member — it keeps hierarchical replay
  code behind the sanctioned flat-kernel bridge functions),
* ``S4xx`` — suspect sets, fault dictionaries and the on-disk cache
  (model engine; ``S406`` is the one code-engine member — it guards the
  sampling subsystem's RNG threading at the source level),
* ``S5xx`` — observability run manifests emitted by :mod:`repro.obs`
  (model engine, :mod:`repro.lint.obs`).  The range is reserved for the
  obs namespace: new manifest/metrics rules go here,
* ``R6xx`` — resilience checkpoint files written by
  :mod:`repro.resilience.checkpoint` (model engine,
  :mod:`repro.lint.resilience`).  The range is reserved for the
  resilience namespace: new checkpoint/recovery rules go here,
* ``F7xx`` — interprocedural RNG-stream determinism (flow engine,
  :mod:`repro.lint.flow.determinism`): seeded generators crossing call
  boundaries, with call-path witnesses,
* ``P8xx`` — process-pool worker safety (flow engine,
  :mod:`repro.lint.flow.poolsafety`): callables shipped to
  ``map_chunked`` / executor submit sites,
* ``K9xx`` — cache-key completeness (flow engine,
  :mod:`repro.lint.flow.cachekeys`): every parameter that influences
  cached dictionary bytes must be hashed into the key.

IDs are append-only: a retired rule's number is never reused, so CI logs
and suppression lists stay meaningful across versions.  To add a rule,
register it here and emit it from the matching engine — see
``docs/architecture.md`` §9 for the walk-through.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .diagnostics import Severity

__all__ = ["Rule", "RULES", "rule"]


@dataclass(frozen=True)
class Rule:
    """Static description of one lint rule."""

    id: str
    title: str
    severity: Severity
    engine: str  # "code" | "model" | "flow"
    description: str


_CATALOG = (
    # ------------------------------------------------------- determinism
    Rule(
        "D101", "stdlib-random-import", Severity.ERROR, "code",
        "Imports the stdlib `random` module. All legacy-surface draws must "
        "go through repro.rng (CompatRandom / coerce_rng); only that module "
        "may import stdlib random.",
    ),
    Rule(
        "D102", "numpy-global-rng", Severity.ERROR, "code",
        "Calls a legacy numpy global-state RNG function (np.random.seed, "
        "np.random.rand, np.random.RandomState, ...). Use an explicitly "
        "seeded np.random.default_rng / SampleSpace.child_rng stream.",
    ),
    Rule(
        "D103", "unseeded-default-rng", Severity.ERROR, "code",
        "Calls np.random.default_rng() with no seed, pulling OS entropy. "
        "Every stream must derive from an explicit seed or SeedSequence "
        "(timing/randvars.py, the stream owner, is exempt).",
    ),
    Rule(
        "D104", "time-dependent-seed", Severity.ERROR, "code",
        "Seeds an RNG from wall-clock time, OS entropy or a UUID "
        "(time.time(), datetime.now(), os.urandom(), uuid.uuid4(), ...): "
        "run-to-run results would differ silently.",
    ),
    Rule(
        "D105", "seed-without-generator-threading", Severity.ERROR, "code",
        "Public simulation entry point accepts a seed parameter but no "
        "`rng` parameter, so callers cannot thread an explicit Generator "
        "through it — the hazard that breaks cross-backend bit-identity. "
        "Scope: module-level public functions in atpg/, defects/, logic/, "
        "core/ and timing/ (randvars.py, the stream owner, is exempt).",
    ),
    Rule(
        "D106", "reference-kernel-outside-timing", Severity.ERROR, "code",
        "Calls a reference-kernel entry point (simulate_transition_reference "
        "/ resimulate_with_extra_reference) outside timing/ or tests/. "
        "Production code must go through the dispatching entry points "
        "(simulate_transition / resimulate_with_extra) so REPRO_TIMING_KERNEL "
        "selects the kernel uniformly; hard-wiring the reference path "
        "silently forfeits the compiled kernel's speedup.",
    ),
    # ----------------------------------------------------------- circuit
    Rule(
        "C201", "circuit-not-frozen", Severity.ERROR, "model",
        "Circuit was not frozen; topology, levels and edge enumeration are "
        "undefined until freeze() runs.",
    ),
    Rule(
        "C202", "no-primary-inputs", Severity.ERROR, "model",
        "Circuit has no primary inputs.",
    ),
    Rule(
        "C203", "no-primary-outputs", Severity.ERROR, "model",
        "Circuit has no primary outputs.",
    ),
    Rule(
        "C204", "dff-in-delay-test-view", Severity.ERROR, "model",
        "Circuit contains a DFF; the delay-test flow expects the scan-"
        "unrolled combinational view (call unroll_scan() first).",
    ),
    Rule(
        "C205", "xor-duplicate-fanins", Severity.WARNING, "model",
        "XOR-family gate with duplicate fanins computes a constant; the "
        "gate and its fanin edges are untestable defect sites.",
    ),
    Rule(
        "C206", "uncontrollable-net", Severity.ERROR, "model",
        "Net is not reachable from any primary input, so no pattern can "
        "launch a transition through it.",
    ),
    Rule(
        "C207", "unobservable-net", Severity.ERROR, "model",
        "Net does not reach any primary output; defects on its segment "
        "can never be observed (the injection experiments rely on full "
        "observability).",
    ),
    Rule(
        "C208", "combinational-cycle", Severity.ERROR, "model",
        "Combinational cycle detected; the timing model and two-vector "
        "simulation require a DAG. (freeze() also rejects cycles — this "
        "catches them in hand-built, not-yet-frozen netlists.)",
    ),
    Rule(
        "C209", "dangling-fanin", Severity.ERROR, "model",
        "Gate fanin references a net that is not declared anywhere in the "
        "netlist (floating net). Multiply-driven nets are unrepresentable "
        "by construction — Circuit.add_gate rejects redefinitions.",
    ),
    # ------------------------------------------------------------ timing
    Rule(
        "T301", "missing-cell-characterization", Severity.ERROR, "model",
        "A gate type instantiated by the circuit has no pin-to-pin delay "
        "characterization in the cell library; materializing the timing "
        "model would fail.",
    ),
    Rule(
        "T302", "invalid-delay-parameters", Severity.ERROR, "model",
        "Cell-library delay parameters are invalid: negative base delay, "
        "negative sigma, or a negative computed nominal pin-to-pin delay.",
    ),
    Rule(
        "T303", "degenerate-delay-distribution", Severity.WARNING, "model",
        "Delay distribution is degenerate (zero variance): statistical "
        "diagnosis degrades to deterministic STA and the paper's "
        "probabilistic dictionary entries collapse to 0/1.",
    ),
    Rule(
        "T304", "three-sigma-exceeds-mean", Severity.WARNING, "model",
        "3-sigma of a delay distribution exceeds its mean, so the "
        "positivity floor truncates the lower tail and the distribution "
        "is no longer the declared normal family.",
    ),
    Rule(
        "T305", "invalid-delay-samples", Severity.ERROR, "model",
        "Materialized delay matrix contains non-finite or negative "
        "samples.",
    ),
    Rule(
        "T310", "hier-bypasses-flat-bridge", Severity.ERROR, "code",
        "Code under a hier/ package calls a flat-kernel replay entry "
        "point directly instead of going through a sanctioned *flat* "
        "bridge function; direct calls bypass the one audited seam the "
        "hierarchical bit-identity proof (and REPRO_TIMING_KERNEL "
        "dispatch) rests on.",
    ),
    # ------------------------------------- suspects / dictionary / cache
    Rule(
        "S401", "suspect-unknown-edge", Severity.ERROR, "model",
        "Suspect references an edge that does not exist in the circuit; "
        "its dictionary column would be meaningless.",
    ),
    Rule(
        "S402", "duplicate-suspect", Severity.WARNING, "model",
        "Duplicate entries in a suspect set waste dictionary columns and "
        "bias posterior mass toward the duplicated site.",
    ),
    Rule(
        "S403", "corrupt-cache-entry", Severity.ERROR, "model",
        "Dictionary-cache entry is unreadable or fails its payload "
        "checksum (truncated write, bit rot, zip damage).",
    ),
    Rule(
        "S404", "cache-schema-drift", Severity.ERROR, "model",
        "Dictionary-cache entry carries an unexpected format version or a "
        "key that disagrees with its filename — written by an "
        "incompatible code revision.",
    ),
    Rule(
        "S405", "orphaned-cache-file", Severity.WARNING, "model",
        "Stray file in the cache directory (leftover temp file from an "
        "interrupted writer, or a foreign file) that no load will ever "
        "consult.",
    ),
    Rule(
        "S406", "sampler-unthreaded-rng", Severity.ERROR, "code",
        "Sampling-subsystem code constructs its own numpy Generator "
        "instead of threading repro.rng.spawn_generator spawn keys; "
        "per-(suspect, clock, round) streams are what make sampled "
        "dictionary builds bit-reproducible across parallel backends.",
    ),
    Rule(
        "S407", "store-manifest-violation", Severity.ERROR, "model",
        "Dictionary-store manifest (dict_<key>.json) violates the "
        "repro-dictionary-store-v1 schema, disagrees with its filename "
        "key, or points at a payload file that does not exist.",
    ),
    # ------------------------------------ observability run manifests
    Rule(
        "S501", "manifest-unreadable", Severity.ERROR, "model",
        "Run manifest file is missing, unreadable, or not valid JSON — "
        "the metrics emitter crashed mid-write or CI archived the wrong "
        "artifact.",
    ),
    Rule(
        "S502", "manifest-schema-violation", Severity.ERROR, "model",
        "Run manifest does not validate against the shipped manifest "
        "schema (repro.obs.MANIFEST_SCHEMA): wrong format tag, missing "
        "required keys, or malformed metrics payloads.",
    ),
    Rule(
        "S503", "manifest-metrics-empty", Severity.WARNING, "model",
        "Run manifest is schema-valid but records no spans and no "
        "counters — the run executed with a disabled recorder, so the "
        "archived profile carries no information.",
    ),
    # -------------------------------------- resilience checkpoints
    Rule(
        "R601", "checkpoint-unreadable", Severity.ERROR, "model",
        "Checkpoint file is missing, unreadable or not valid JSON — the "
        "writer died mid-campaign before its first atomic commit, or the "
        "file was damaged afterwards. A --resume against it would fail.",
    ),
    Rule(
        "R602", "checkpoint-schema-violation", Severity.ERROR, "model",
        "Checkpoint does not validate against the shipped checkpoint "
        "schema (repro.resilience.CHECKPOINT_SCHEMA): wrong format tag, "
        "missing sections, inconsistent progress, or a checksum mismatch "
        "(tampered or bit-rotted state).",
    ),
    Rule(
        "R603", "checkpoint-state-inconsistent", Severity.ERROR, "model",
        "Checkpoint is schema-valid but its state disagrees with its own "
        "progress header (e.g. an evaluation checkpoint whose recorded "
        "trial list is not the completed count) — resuming would "
        "silently drop or duplicate trials.",
    ),
    Rule(
        "R604", "checkpoint-stale-temp", Severity.WARNING, "model",
        "Stray checkpoint temp file (.tmp_ckpt_*) in the directory: an "
        "interrupted writer died between mkstemp and the atomic rename. "
        "Harmless to resume, but worth cleaning up.",
    ),
    Rule(
        "R605", "wire-taxonomy-not-append-only", Severity.ERROR, "model",
        "The service wire-error taxonomy (repro.service.errors.WIRE_TYPES) "
        "drifted from the pinned release baseline: a released error.type "
        "tag was removed, re-typed, or reordered. Deployed clients "
        "dispatch on these tags, so the taxonomy is append-only protocol "
        "— new tags go at the end only.",
    ),
    # --------------------------- interprocedural determinism (flow)
    Rule(
        "F701", "dropped-generator-at-call-boundary", Severity.ERROR, "flow",
        "A function holds a seeded generator but calls a generator-"
        "accepting callee that transitively samples without forwarding "
        "any stream; the callee falls back to its own default stream and "
        "the caller's seeding has no effect. The diagnostic carries the "
        "call path from the drop site to the actual draw.",
    ),
    Rule(
        "F702", "seeded-stream-never-used", Severity.ERROR, "flow",
        "The result of an RNG creation site (spawn_generator, child_rng, "
        "seeded default_rng, ...) is bound and then never read: no draw, "
        "no forwarding, no return. The sampling it was meant to drive "
        "runs on some other generator.",
    ),
    Rule(
        "F703", "generator-valued-parameter-default", Severity.ERROR, "flow",
        "An rng-like parameter defaults to a generator constructed at "
        "def time, so every unthreaded call shares one stateful stream "
        "and results depend on call order. Default to None and derive "
        "the stream inside the call.",
    ),
    # ------------------------------------- pool-worker safety (flow)
    Rule(
        "P801", "worker-writes-module-state", Severity.ERROR, "flow",
        "A callable shipped to map_chunked / executor.submit (or one of "
        "its transitive callees) writes module-level mutable state "
        "outside the sanctioned worker protocol; each pool worker "
        "mutates its own copy, so parallel results silently diverge "
        "from serial ones. Ship state home with the chunk results "
        "(the _MetricsShard protocol) instead.",
    ),
    Rule(
        "P802", "worker-not-module-level", Severity.ERROR, "flow",
        "The callable shipped to map_chunked / executor.submit is a "
        "lambda or a nested function; process backends pickle workers "
        "by qualified name, so the build only works serially.",
    ),
    # --------------------------------- cache-key completeness (flow)
    Rule(
        "K901", "content-param-missing-from-cache-key", Severity.ERROR, "flow",
        "A parameter of a cache-keyed build function influences the "
        "cached content (reaches the map_chunked payload or a worker-"
        "job construction) but is not hashed into the cache key and is "
        "not re-derivable from key-covered parameters; two builds "
        "differing only in that parameter collide on one key and the "
        "second is served stale bytes.",
    ),
    Rule(
        "K902", "cache-key-param-without-content-influence",
        Severity.WARNING, "flow",
        "A parameter is hashed into the cache key but never reaches the "
        "dictionary content; over-keying splits the cache across "
        "irrelevant values and hides hit-rate regressions.",
    ),
)

#: Rule catalog indexed by stable ID.
RULES: Dict[str, Rule] = {entry.id: entry for entry in _CATALOG}


def rule(rule_id: str) -> Rule:
    """Look up a rule; raises ``KeyError`` for unknown IDs."""
    return RULES[rule_id]
