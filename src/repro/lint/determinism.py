"""AST-based determinism linter (rules ``D1xx``).

Scans Python source for the RNG hazards that would silently break the
bit-identical parallel/cached dictionary guarantee established in PR 1:

* ``D101`` — stdlib ``random`` imports (only :mod:`repro.rng` may),
* ``D102`` — legacy numpy global-state calls (``np.random.seed`` & co.),
* ``D103`` — unseeded ``np.random.default_rng()`` (OS-entropy streams),
* ``D104`` — time/entropy-dependent seeding expressions,
* ``D105`` — public simulation entry points that take a ``seed`` but do
  not let callers thread an explicit ``Generator``,
* ``D106`` — reference-kernel entry points used outside ``timing/`` or
  ``tests/`` (production code must go through the dispatching entry
  points so ``REPRO_TIMING_KERNEL`` stays authoritative),
* ``S406`` — code under a ``sampling/`` package constructing its own
  numpy generators (seeded or not) instead of threading
  ``repro.rng.spawn_generator`` spawn keys; ad-hoc generators break the
  bit-reproducibility of sampled dictionary builds across backends,
* ``T310`` — code under a ``hier/`` package calling flat-kernel replay
  entry points outside a sanctioned ``*flat*``-named bridge function;
  the bridge is the one audited seam the hierarchical bit-identity
  proof rests on.

Pure ``ast`` — no third-party linter framework, no imports of the scanned
code.  Findings can be silenced per line with a trailing
``# repro-lint: allow[D101]`` comment (comma-separated IDs or ``*``).
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .diagnostics import Diagnostic
from .rules import RULES

__all__ = ["lint_source", "lint_file", "lint_paths", "default_code_root"]

#: Files allowed to import stdlib random: the blessed shim module.
_D101_ALLOWED_SUFFIXES = (os.path.join("repro", "rng.py"),)

#: Files exempt from D103/D105: the stream owner itself.
_STREAM_OWNER_SUFFIXES = (os.path.join("timing", "randvars.py"),)

#: Packages whose module-level public functions count as simulation entry
#: points for D105.
_D105_SCOPE_DIRS = {"atpg", "defects", "logic", "core", "timing"}

#: Legacy global-state members of ``numpy.random`` (D102).  Seeded
#: construction of Generators/SeedSequences/bit generators is *not* here.
_NP_LEGACY = {
    "seed", "rand", "randn", "randint", "random", "ranf", "random_sample",
    "sample", "random_integers", "normal", "standard_normal", "uniform",
    "shuffle", "permutation", "choice", "binomial", "poisson", "exponential",
    "beta", "gamma", "get_state", "set_state", "RandomState", "bytes",
}

#: Dotted-name suffixes whose call inside a seeding expression is D104.
_TIME_SOURCES = (
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "datetime.now",
    "datetime.utcnow", "datetime.today", "date.today", "os.urandom",
    "os.getrandom", "uuid.uuid1", "uuid.uuid4", "secrets.token_bytes",
    "secrets.randbits",
)

#: Callable terminal names treated as RNG seeding sinks for D104.
_SEEDING_SINKS = {
    "default_rng", "SeedSequence", "Random", "CompatRandom", "RandomState",
    "MT19937", "PCG64", "PCG64DXSM", "Philox", "SFC64", "seed",
    "compat_from_seedsequence", "spawn_generator",
}

#: Reference-kernel entry points only ``timing/`` and ``tests/`` may name
#: (D106) — everything else must use the dispatching entry points.
_REFERENCE_KERNEL_NAMES = {
    "simulate_transition_reference",
    "resimulate_with_extra_reference",
}

#: Path components in which D106 does not apply: the kernel's own package
#: (the dispatcher must reach the reference path) and the test suite
#: (which pins bit-identity against it).
_D106_EXEMPT_DIRS = {"timing", "tests"}

#: Directory components that scope S406: inside a sampling package every
#: generator must come from ``spawn_generator``, never be built locally.
_SAMPLING_DIRS = {"sampling"}

#: Generator-constructing ``numpy.random`` members S406 bans inside
#: sampling packages (seeded or not — the spawn-key protocol is the only
#: accepted seeding discipline there).
_S406_CONSTRUCTORS = {
    "default_rng", "Generator", "SeedSequence", "RandomState",
    "MT19937", "PCG64", "PCG64DXSM", "Philox", "SFC64",
}

#: Directory components that scope T310: hierarchical replay packages.
_HIER_DIRS = {"hier"}

#: Flat-kernel replay entry points T310 confines to ``*flat*`` bridges
#: inside ``hier/`` code (dispatching names plus both kernel variants —
#: naming any of them outside a bridge bypasses the audited seam).
_FLAT_KERNEL_NAMES = {
    "simulate_transition",
    "resimulate_with_extra",
    "replay_sizes",
    "simulate_transition_compiled",
    "resimulate_with_extra_compiled",
    "replay_sizes_compiled",
    "simulate_transition_reference",
    "resimulate_with_extra_reference",
}

#: Parameter names that mark a seed input / an explicit generator input.
_SEED_PARAMS = {"seed", "rng_seed"}
_GENERATOR_PARAMS = {"rng", "generator", "space"}

_ALLOW_RE = re.compile(r"#\s*repro-lint:\s*allow\[([^\]]*)\]")


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Attribute/Name chains, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _path_matches(path: str, suffixes: Sequence[str]) -> bool:
    normalized = os.path.normpath(path)
    return any(normalized.endswith(suffix) for suffix in suffixes)


def _allow_map(source: str) -> Dict[int, Set[str]]:
    """Per-line inline suppressions: ``{lineno: {"D101", ...}}``."""
    allowed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match:
            ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
            allowed[lineno] = ids
    return allowed


class _DeterminismVisitor(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Diagnostic] = []
        parts = os.path.normpath(path).split(os.sep)
        #: D106 scope: the timing package itself and the test suite may
        #: name the reference kernel; nothing else may.
        self.d106_exempt = bool(_D106_EXEMPT_DIRS & set(parts[:-1]))
        #: S406 scope: files living under a sampling/ package directory.
        self.in_sampling = bool(_SAMPLING_DIRS & set(parts[:-1]))
        #: T310 scope: files living under a hier/ package directory.
        self.in_hier = bool(_HIER_DIRS & set(parts[:-1]))
        #: Enclosing function names (innermost last) for bridge checks.
        self.function_stack: List[str] = []
        #: Local aliases of the numpy package (``numpy``, ``np``, ...).
        self.numpy_aliases: Set[str] = set()
        #: Local aliases of the ``numpy.random`` module itself.
        self.np_random_aliases: Set[str] = set()
        #: Names imported directly from ``numpy.random``: name -> member.
        self.np_random_members: Dict[str, str] = {}

    # -- helpers --------------------------------------------------------
    def _emit(self, rule_id: str, lineno: int, message: str) -> None:
        self.findings.append(
            Diagnostic(
                rule=rule_id,
                severity=RULES[rule_id].severity,
                message=message,
                path=self.path,
                line=lineno,
                engine="code",
            )
        )

    # -- imports --------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root == "random":
                if not _path_matches(self.path, _D101_ALLOWED_SUFFIXES):
                    self._emit(
                        "D101", node.lineno,
                        "stdlib `random` import; use repro.rng.CompatRandom "
                        "/ coerce_rng (only repro/rng.py may import random)",
                    )
            elif alias.name == "numpy":
                self.numpy_aliases.add(alias.asname or "numpy")
            elif alias.name == "numpy.random":
                if alias.asname:
                    self.np_random_aliases.add(alias.asname)
                else:
                    self.numpy_aliases.add("numpy")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level == 0 and module.split(".")[0] == "random":
            if not _path_matches(self.path, _D101_ALLOWED_SUFFIXES):
                self._emit(
                    "D101", node.lineno,
                    "stdlib `random` import; use repro.rng.CompatRandom "
                    "/ coerce_rng (only repro/rng.py may import random)",
                )
        elif module == "numpy" and node.level == 0:
            for alias in node.names:
                if alias.name == "random":
                    self.np_random_aliases.add(alias.asname or "random")
        elif module == "numpy.random" and node.level == 0:
            for alias in node.names:
                self.np_random_members[alias.asname or alias.name] = alias.name
        if not self.d106_exempt:
            for alias in node.names:
                if alias.name in _REFERENCE_KERNEL_NAMES:
                    self._emit(
                        "D106", node.lineno,
                        f"imports reference-kernel entry point "
                        f"`{alias.name}` outside timing/ or tests/; use the "
                        "dispatching entry point so REPRO_TIMING_KERNEL "
                        "selects the kernel",
                    )
        self.generic_visit(node)

    # -- function scopes ------------------------------------------------
    def _visit_function(self, node) -> None:
        self.function_stack.append(node.name)
        try:
            self.generic_visit(node)
        finally:
            self.function_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # -- calls ----------------------------------------------------------
    def _np_random_member(self, func: ast.AST) -> Optional[str]:
        """The ``numpy.random`` member a call targets, if any."""
        if isinstance(func, ast.Attribute):
            base = _dotted(func.value)
            if base is None:
                return None
            root = base.split(".")[0]
            if base in self.np_random_aliases:
                return func.attr
            if root in self.numpy_aliases and base == f"{root}.random":
                return func.attr
            return None
        if isinstance(func, ast.Name) and func.id in self.np_random_members:
            return self.np_random_members[func.id]
        return None

    def _check_time_seeding(self, call: ast.Call) -> None:
        terminal = None
        if isinstance(call.func, ast.Attribute):
            terminal = call.func.attr
        elif isinstance(call.func, ast.Name):
            terminal = call.func.id
        seed_subtrees: List[ast.AST] = []
        if terminal in _SEEDING_SINKS:
            seed_subtrees.extend(call.args)
            seed_subtrees.extend(kw.value for kw in call.keywords)
        else:
            # Any call seeding through a keyword: f(..., seed=<expr>).
            seed_subtrees.extend(
                kw.value for kw in call.keywords
                if kw.arg in ("seed", "rng_seed", "entropy")
            )
        for subtree in seed_subtrees:
            for inner in ast.walk(subtree):
                if not isinstance(inner, ast.Call):
                    continue
                dotted = _dotted(inner.func)
                if dotted is None:
                    continue
                if any(
                    dotted == source or dotted.endswith("." + source)
                    for source in _TIME_SOURCES
                ):
                    self._emit(
                        "D104", inner.lineno,
                        f"RNG seeded from `{dotted}()`; seeds must be "
                        "explicit values or SeedSequence-derived",
                    )

    def visit_Call(self, node: ast.Call) -> None:
        terminal = None
        if isinstance(node.func, ast.Attribute):
            terminal = node.func.attr
        elif isinstance(node.func, ast.Name):
            terminal = node.func.id
        if (
            self.in_hier
            and terminal in _FLAT_KERNEL_NAMES
            and not any("flat" in name for name in self.function_stack)
        ):
            self._emit(
                "T310", node.lineno,
                f"hier/ code calls flat-kernel entry point `{terminal}` "
                "outside a sanctioned *flat* bridge function; route the "
                "call through the bridge (e.g. `_flat_replay`) so the "
                "hierarchical bit-identity seam stays auditable",
            )
        if not self.d106_exempt:
            if terminal in _REFERENCE_KERNEL_NAMES:
                self._emit(
                    "D106", node.lineno,
                    f"calls reference-kernel entry point `{terminal}` "
                    "outside timing/ or tests/; use the dispatching entry "
                    "point so REPRO_TIMING_KERNEL selects the kernel",
                )
        member = self._np_random_member(node.func)
        if member is not None:
            if self.in_sampling and member in _S406_CONSTRUCTORS:
                self._emit(
                    "S406", node.lineno,
                    f"sampling code builds `np.random.{member}(...)` "
                    "directly; thread repro.rng.spawn_generator("
                    "seed, SAMPLER_SPAWN_KEY, suspect, clk, round) so "
                    "draws replay bit-identically across backends",
                )
            if member in _NP_LEGACY:
                self._emit(
                    "D102", node.lineno,
                    f"legacy numpy global-state RNG call "
                    f"`np.random.{member}(...)`; draw from an explicitly "
                    "seeded Generator (SampleSpace.child_rng / default_rng)",
                )
            elif member == "default_rng" and not node.args and not node.keywords:
                if not _path_matches(self.path, _STREAM_OWNER_SUFFIXES):
                    self._emit(
                        "D103", node.lineno,
                        "unseeded `default_rng()` pulls OS entropy; pass an "
                        "explicit seed or SeedSequence",
                    )
        self._check_time_seeding(node)
        self.generic_visit(node)

    # -- entry-point threading (module level only) ----------------------
    def check_entry_points(self, tree: ast.Module) -> None:
        parts = os.path.normpath(self.path).split(os.sep)
        in_scope = any(part in _D105_SCOPE_DIRS for part in parts[:-1])
        if not in_scope or _path_matches(self.path, _STREAM_OWNER_SUFFIXES):
            return
        for node in tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_"):
                continue
            names = {arg.arg for arg in node.args.args + node.args.kwonlyargs}
            if names & _SEED_PARAMS and not names & _GENERATOR_PARAMS:
                self._emit(
                    "D105", node.lineno,
                    f"public entry point `{node.name}` accepts a seed but "
                    "no `rng` parameter; callers cannot thread an explicit "
                    "Generator through it",
                )


def lint_source(source: str, path: str = "<string>") -> List[Diagnostic]:
    """Lint one Python source string; returns unsuppressed findings."""
    tree = ast.parse(source, filename=path)
    visitor = _DeterminismVisitor(path)
    visitor.visit(tree)
    visitor.check_entry_points(tree)
    allowed = _allow_map(source)
    findings = []
    for finding in visitor.findings:
        inline = allowed.get(finding.line or -1, set())
        if finding.rule in inline or "*" in inline:
            continue
        findings.append(finding)
    return sorted(findings, key=lambda d: (d.line or 0, d.rule))


def lint_file(path: str) -> List[Diagnostic]:
    with open(path, "r", encoding="utf-8") as handle:
        return lint_source(handle.read(), path=path)


def default_code_root() -> str:
    """The installed ``repro`` package directory (the default lint target)."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def lint_paths(paths: Optional[Iterable[str]] = None) -> List[Diagnostic]:
    """Lint ``.py`` files under each path (file or directory tree)."""
    if paths is None:
        paths = [default_code_root()]
    findings: List[Diagnostic] = []
    for target in paths:
        if os.path.isfile(target):
            findings.extend(lint_file(target))
            continue
        for dirpath, dirnames, filenames in os.walk(target):
            dirnames[:] = sorted(
                d for d in dirnames if d not in ("__pycache__", ".git")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    findings.extend(lint_file(os.path.join(dirpath, filename)))
    return findings
