"""repro.lint — unified static analysis for code and models.

Two engines under one diagnostics framework with stable rule IDs,
severities and per-rule suppression:

* the **determinism linter** (``D1xx``) walks the package's own AST for
  RNG hazards that would break bit-identical parallel/cached dictionary
  builds — stdlib ``random`` use, numpy global-state calls, unseeded or
  time-seeded generators, seed parameters without Generator threading;
* the **semantic model checker** (``C2xx``/``T3xx``/``S4xx``) audits the
  artifacts the flow consumes — netlists, cell libraries, materialized
  timing models, suspect sets and the on-disk dictionary cache;
* the **manifest auditor** (``S5xx``, :mod:`repro.lint.obs`) gates the
  observability run manifests that ``--metrics`` / ``profile`` emit and
  CI archives;
* the **checkpoint auditor** (``R6xx``, :mod:`repro.lint.resilience`)
  gates the resilience checkpoints that ``table1 --checkpoint`` writes —
  the files a ``--resume`` would trust — and pins the service
  wire-error taxonomy as append-only protocol (R605);
* the **flow engine** (``F7xx``/``P8xx``/``K9xx``, :mod:`repro.lint.flow`)
  runs whole-program dataflow analyses over the package — interprocedural
  RNG-stream threading with call-path witnesses, pool-worker purity, and
  cache-key completeness — with a checked-in, justification-carrying
  baseline for reviewed exceptions.

CLI: ``python -m repro lint [--code|--models|--flow|--all] [--changed
[REF]] [--format json]``.
The JSON payload shape is pinned by
:data:`~repro.lint.diagnostics.REPORT_SCHEMA`; the rule catalog lives in
:mod:`repro.lint.rules` and is documented in ``docs/architecture.md`` §9.
"""

from .diagnostics import (
    Diagnostic,
    LintReport,
    REPORT_SCHEMA,
    SCHEMA_VERSION,
    Severity,
    parse_suppressions,
    validate_report_payload,
)
from .determinism import lint_file, lint_paths, lint_source
from .flow import (
    BASELINE_FORMAT,
    DEFAULT_BASELINE_NAME,
    FlowBaseline,
    analyze_flow,
    build_call_graph,
    load_baseline,
)
from .models import (
    check_benchmark,
    check_cache,
    check_circuit,
    check_library,
    check_suspects,
    check_timing,
    lint_circuit,
)
from .obs import check_manifest
from .resilience import (
    WIRE_TAXONOMY_BASELINE,
    check_checkpoint,
    check_checkpoint_dir,
    check_wire_taxonomy,
)
from .rules import RULES, Rule, rule
from .runner import (
    changed_files,
    lint_checkpoints,
    lint_code,
    lint_flow,
    lint_manifests,
    lint_models,
    render_report,
    render_rule_catalog,
    run_lint,
)

__all__ = [
    "BASELINE_FORMAT",
    "DEFAULT_BASELINE_NAME",
    "Diagnostic",
    "FlowBaseline",
    "LintReport",
    "REPORT_SCHEMA",
    "RULES",
    "Rule",
    "SCHEMA_VERSION",
    "Severity",
    "WIRE_TAXONOMY_BASELINE",
    "analyze_flow",
    "build_call_graph",
    "changed_files",
    "check_benchmark",
    "check_cache",
    "check_checkpoint",
    "check_checkpoint_dir",
    "check_wire_taxonomy",
    "check_circuit",
    "check_library",
    "check_manifest",
    "check_suspects",
    "check_timing",
    "lint_checkpoints",
    "lint_circuit",
    "lint_code",
    "lint_file",
    "lint_flow",
    "lint_manifests",
    "lint_models",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "parse_suppressions",
    "render_report",
    "render_rule_catalog",
    "rule",
    "run_lint",
    "validate_report_payload",
]
