"""Whole-program dataflow analyses over the ``repro`` package.

The per-file linters in :mod:`repro.lint` prove properties one module at
a time; this package proves the three properties that live *between*
modules:

* :mod:`~repro.lint.flow.determinism` (``F7xx``) — seeded RNG streams
  survive every call boundary they are supposed to cross;
* :mod:`~repro.lint.flow.poolsafety` (``P8xx``) — worker-shipped
  callables are picklable and transitively free of module-state writes;
* :mod:`~repro.lint.flow.cachekeys` (``K9xx``) — cache keys hash every
  parameter that can change the cached bytes.

All three run over one shared :func:`~repro.lint.flow.callgraph.
build_call_graph` result and one :func:`~repro.lint.flow.dataflow.solve`
framework.  :func:`analyze_flow` is the composed entry point used by the
lint runner: build the graph once, run the clients, then apply the two
suppression layers — inline ``# repro-lint: allow[F701]`` comments
(shared syntax with the file-local linters) and the checked-in,
justification-carrying baseline file (:mod:`~repro.lint.flow.baseline`).
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from ..diagnostics import Diagnostic
from ..determinism import _allow_map, default_code_root
from .baseline import (
    BASELINE_FORMAT,
    DEFAULT_BASELINE_NAME,
    BaselineEntry,
    FlowBaseline,
    load_baseline,
    parse_baseline,
)
from .callgraph import CallGraph, build_call_graph
from .cachekeys import analyze_cache_keys
from .determinism import analyze_determinism
from .poolsafety import SANCTIONED_MODULE_SUFFIXES, analyze_pool_safety

__all__ = [
    "analyze_flow",
    "build_call_graph",
    "CallGraph",
    "FlowBaseline",
    "BaselineEntry",
    "load_baseline",
    "parse_baseline",
    "BASELINE_FORMAT",
    "DEFAULT_BASELINE_NAME",
    "SANCTIONED_MODULE_SUFFIXES",
]


def _inline_filter(diagnostics: Sequence[Diagnostic]) -> List[Diagnostic]:
    """Drop findings silenced by a same-line ``# repro-lint: allow[...]``.

    The allow comment may sit on the diagnostic's anchor line *or* on the
    line of the flagged ``def`` — multi-line calls put the comment where
    the statement starts.
    """
    allow_cache: dict = {}
    kept: List[Diagnostic] = []
    for diagnostic in diagnostics:
        path, line = diagnostic.path, diagnostic.line
        if path and line and os.path.exists(path):
            if path not in allow_cache:
                with open(path, "r", encoding="utf-8") as handle:
                    allow_cache[path] = _allow_map(handle.read())
            allowed = allow_cache[path].get(line, set())
            if diagnostic.rule in allowed or "*" in allowed:
                continue
        kept.append(diagnostic)
    return kept


def analyze_flow(
    root: Optional[str] = None,
    package: Optional[str] = None,
    baseline: Optional[FlowBaseline] = None,
    sanctioned: Tuple[str, ...] = SANCTIONED_MODULE_SUFFIXES,
    graph: Optional[CallGraph] = None,
) -> Tuple[List[Diagnostic], List[Diagnostic]]:
    """Run all three flow analyses over one package.

    ``root`` defaults to the installed ``repro`` package directory (the
    self-check).  Returns ``(findings, suppressed)`` — both sorted, the
    second holding baseline-suppressed findings so callers can render the
    audit trail; inline-allowed findings are dropped entirely, matching
    the file-local linters.
    """
    if graph is None:
        if root is None:
            root = default_code_root()
            package = package or "repro"
        graph = build_call_graph(root, package=package)
    findings: List[Diagnostic] = []
    findings.extend(analyze_determinism(graph))
    findings.extend(analyze_pool_safety(graph, sanctioned=sanctioned))
    findings.extend(analyze_cache_keys(graph))
    findings = _inline_filter(findings)
    suppressed: List[Diagnostic] = []
    if baseline is not None:
        findings, suppressed = baseline.filter(findings)
    key = lambda d: (d.path or "~", d.line or 0, d.rule)  # noqa: E731
    return sorted(findings, key=key), sorted(suppressed, key=key)
