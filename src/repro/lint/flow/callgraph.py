"""Module-resolving call-graph builder over a Python package (AST-only).

The whole-program analyses (:mod:`repro.lint.flow`) need to follow values
across call boundaries, which the per-file determinism linter cannot do.
This module parses every ``.py`` file under a package root — **without
importing any of it** — and resolves three things:

* a **module table**: dotted module name -> parsed AST, per-module import
  aliases (``from .cache import resolve_cache`` -> fully-dotted targets),
  and the module-level bindings (including which ones are *mutable
  containers* — the state pool-safety cares about);
* a **function table**: every module-level function and every method,
  keyed by qualified name (``repro.core.dictionary.build_dictionary``,
  ``repro.sampling.allocator.CellAllocator.draw``), with its parameter
  list, defaults, and decorator/visibility metadata;
* **call edges**: for each function, every ``ast.Call`` in its body with
  the callee resolved to a qualified name when the target lives inside
  the analyzed package (module-local names, imported names, ``self.``
  methods of the enclosing class, and re-exports through package
  ``__init__`` files).  Unresolvable calls keep their dotted source text
  so clients can still pattern-match on terminal names (``np.random.
  default_rng`` and friends).

Resolution is deliberately *syntactic*: no type inference, no dynamic
dispatch.  A call the builder cannot resolve is recorded as unresolved
rather than guessed, which is the property the zero-false-positive
guarantee of the flow clients rests on.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ModuleInfo",
    "CallGraph",
    "build_call_graph",
    "dotted_name",
]

#: AST node types whose module-level assignment marks a *mutable* global.
_MUTABLE_LITERALS = (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp,
                     ast.SetComp)


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for ``Attribute``/``Name`` chains, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    lineno: int
    #: Dotted source text of the callee expression (``"np.random.
    #: default_rng"``, ``"self.draw"``); ``None`` for computed callees.
    raw: Optional[str]
    #: Fully-qualified target when it resolves inside the package.
    callee: Optional[str] = None

    @property
    def terminal(self) -> Optional[str]:
        """Last dotted component of the callee expression."""
        if self.raw is None:
            return None
        return self.raw.rsplit(".", 1)[-1]


@dataclass
class FunctionInfo:
    """One function or method, with everything the analyses consult."""

    qualname: str
    module: str
    path: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    #: Enclosing class name for methods, ``None`` for module-level defs.
    owner_class: Optional[str] = None
    params: List[str] = field(default_factory=list)
    #: Parameter name -> default expression (only params that have one).
    defaults: Dict[str, ast.AST] = field(default_factory=dict)
    calls: List[CallSite] = field(default_factory=list)
    #: Functions defined *inside* this one (their qualnames).
    nested: List[str] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_") and self.owner_class is None

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class ModuleInfo:
    """One parsed module of the analyzed package."""

    name: str
    path: str
    tree: ast.Module
    #: Local name -> fully dotted target (functions, modules, classes).
    imports: Dict[str, str] = field(default_factory=dict)
    #: Module-level simple-name bindings -> the assigned value node.
    globals: Dict[str, ast.AST] = field(default_factory=dict)
    #: Module-level names bound to mutable containers (dict/list/set
    #: displays, ``defaultdict(...)``-style constructor calls of known
    #: container types, or re-assigned via ``global`` from functions).
    mutable_globals: Set[str] = field(default_factory=set)
    #: Names of module-level functions and classes defined here.
    functions: Set[str] = field(default_factory=set)
    classes: Set[str] = field(default_factory=set)


#: Constructor terminal names that produce mutable containers.
_MUTABLE_CONSTRUCTORS = {
    "dict", "list", "set", "defaultdict", "OrderedDict", "Counter",
    "deque", "bytearray",
}


class CallGraph:
    """The resolved program: module table, function table, call edges."""

    def __init__(self, package: str, root: str) -> None:
        self.package = package
        self.root = root
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: Reverse edges: callee qualname -> set of caller qualnames.
        self.callers: Dict[str, Set[str]] = {}

    # -- lookups --------------------------------------------------------
    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def module_of(self, qualname: str) -> Optional[ModuleInfo]:
        fn = self.functions.get(qualname)
        return self.modules.get(fn.module) if fn else None

    def functions_in(self, module: str) -> List[FunctionInfo]:
        return [f for f in self.functions.values() if f.module == module]

    def resolve_in_module(self, module: ModuleInfo, raw: str) -> Optional[str]:
        """Resolve a dotted expression used inside ``module`` to a
        function qualname in the graph, or ``None``."""
        head, _, rest = raw.partition(".")
        # module-local function or class-member chain
        if not rest:
            if head in module.functions:
                return f"{module.name}.{head}"
            target = module.imports.get(head)
            if target is not None:
                return self._canonical_function(target)
            return None
        # imported module / imported class attribute
        target = module.imports.get(head)
        if target is not None:
            return self._canonical_function(f"{target}.{rest}")
        if head in module.classes:
            return self._canonical_function(f"{module.name}.{head}.{rest}")
        return None

    def _canonical_function(self, dotted: str) -> Optional[str]:
        """Map a dotted target to a function qualname, following one level
        of package ``__init__`` re-export when needed."""
        if dotted in self.functions:
            return dotted
        # ``repro.lint.check_circuit`` -> re-exported from a submodule:
        # look the name up in the package __init__'s import table.
        prefix, _, leaf = dotted.rpartition(".")
        init = self.modules.get(prefix)
        if init is not None and leaf in init.imports:
            target = init.imports[leaf]
            if target in self.functions:
                return target
        return None

    # -- construction ---------------------------------------------------
    def _index_reverse_edges(self) -> None:
        self.callers = {name: set() for name in self.functions}
        for fn in self.functions.values():
            for site in fn.calls:
                if site.callee is not None and site.callee in self.functions:
                    self.callers[site.callee].add(fn.qualname)


def _module_name(package: str, root: str, path: str) -> str:
    rel = os.path.relpath(path, root)
    parts = rel[:-3].split(os.sep)  # strip .py
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join([package] + [p for p in parts if p])


def _collect_imports(module: ModuleInfo, package: str) -> None:
    """Fill ``module.imports`` from the module-level import statements."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                module.imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    module.imports[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # relative import: resolve against this module's package
                anchor = module.name.split(".")
                # a module's own package is its dotted name minus the leaf
                # (packages themselves — __init__ — already are the anchor)
                if not _is_package_module(module):
                    anchor = anchor[:-1]
                if node.level > 1:
                    anchor = anchor[: -(node.level - 1)]
                base = ".".join(anchor + ([base] if base else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                module.imports[alias.asname or alias.name] = (
                    f"{base}.{alias.name}" if base else alias.name
                )


def _is_package_module(module: ModuleInfo) -> bool:
    return os.path.basename(module.path) == "__init__.py"


def _collect_globals(module: ModuleInfo) -> None:
    """Record module-level bindings and which of them are mutable."""
    for node in module.tree.body:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            module.globals[target.id] = value
            if isinstance(value, _MUTABLE_LITERALS):
                module.mutable_globals.add(target.id)
            elif isinstance(value, ast.Call):
                terminal = dotted_name(value.func)
                if terminal and terminal.rsplit(".", 1)[-1] in _MUTABLE_CONSTRUCTORS:
                    module.mutable_globals.add(target.id)
    # a name re-bound through ``global`` from any function is state too
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Global):
            module.mutable_globals.update(node.names)
            for name in node.names:
                module.globals.setdefault(name, None)


class _FunctionCollector(ast.NodeVisitor):
    """Collect functions, methods, nested defs, and their call sites."""

    def __init__(self, graph: CallGraph, module: ModuleInfo) -> None:
        self.graph = graph
        self.module = module
        self.class_stack: List[str] = []
        self.fn_stack: List[FunctionInfo] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self.fn_stack:
            self.module.classes.add(node.name)
        self.class_stack.append(node.name)
        self.generic_visit(node)
        self.class_stack.pop()

    def _handle_function(self, node) -> None:
        if self.fn_stack:
            qualname = f"{self.fn_stack[-1].qualname}.<locals>.{node.name}"
            owner = self.fn_stack[-1].owner_class
        elif self.class_stack:
            qualname = (
                f"{self.module.name}.{'.'.join(self.class_stack)}.{node.name}"
            )
            owner = self.class_stack[-1]
        else:
            qualname = f"{self.module.name}.{node.name}"
            owner = None
            self.module.functions.add(node.name)
        args = node.args
        params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        defaults: Dict[str, ast.AST] = {}
        positional = args.posonlyargs + args.args
        for param, default in zip(
            positional[len(positional) - len(args.defaults):], args.defaults
        ):
            defaults[param.arg] = default
        for param, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                defaults[param.arg] = default
        info = FunctionInfo(
            qualname=qualname,
            module=self.module.name,
            path=self.module.path,
            node=node,
            owner_class=owner,
            params=params,
            defaults=defaults,
        )
        self.graph.functions[qualname] = info
        if self.fn_stack:
            self.fn_stack[-1].nested.append(qualname)
        self.fn_stack.append(info)
        self.generic_visit(node)
        self.fn_stack.pop()

    visit_FunctionDef = _handle_function
    visit_AsyncFunctionDef = _handle_function

    def visit_Call(self, node: ast.Call) -> None:
        if self.fn_stack:
            raw = dotted_name(node.func)
            self.fn_stack[-1].calls.append(
                CallSite(node=node, lineno=node.lineno, raw=raw)
            )
        self.generic_visit(node)


def _resolve_calls(graph: CallGraph) -> None:
    for fn in graph.functions.values():
        module = graph.modules[fn.module]
        for site in fn.calls:
            if site.raw is None:
                continue
            if site.raw.startswith("self.") and fn.owner_class is not None:
                method = site.raw[len("self."):]
                if "." not in method:
                    candidate = f"{fn.module}.{fn.owner_class}.{method}"
                    if candidate in graph.functions:
                        site.callee = candidate
                continue
            # a nested def called by its bare name resolves to the sibling
            if "." not in site.raw:
                for nested in fn.nested:
                    if nested.endswith(f".<locals>.{site.raw}"):
                        site.callee = nested
                        break
                if site.callee is not None:
                    continue
            site.callee = graph.resolve_in_module(module, site.raw)


def iter_package_files(root: str) -> Iterable[str]:
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames if d not in ("__pycache__", ".git")
        )
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def build_call_graph(
    root: str,
    package: Optional[str] = None,
    files: Optional[Sequence[str]] = None,
) -> CallGraph:
    """Parse every module under ``root`` and resolve the call graph.

    ``package`` defaults to the root directory's basename.  ``files``
    restricts parsing to an explicit list (still rooted at ``root`` for
    dotted-name computation) — used by fixture tests; the normal entry
    point analyzes the full tree so interprocedural edges are complete.
    """
    root = os.path.abspath(root)
    if package is None:
        package = os.path.basename(root.rstrip(os.sep))
    graph = CallGraph(package, root)
    for path in (files if files is not None else iter_package_files(root)):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue  # unparsable files are the basic linter's problem
        module = ModuleInfo(
            name=_module_name(package, root, os.path.abspath(path)),
            path=path,
            tree=tree,
        )
        graph.modules[module.name] = module
        _collect_imports(module, package)
        _collect_globals(module)
    for module in graph.modules.values():
        _FunctionCollector(graph, module).visit(module.tree)
    _resolve_calls(graph)
    graph._index_reverse_edges()
    return graph
