"""A small forward dataflow framework over the call graph.

Interprocedural analyses in :mod:`repro.lint.flow` all follow the same
shape: compute a per-function **summary** (an element of a client-defined
lattice), where a function's summary depends on its own body plus the
summaries of its resolved callees, and iterate a **worklist** until the
summaries reach a fixpoint.  This module provides that skeleton so each
client only writes its transfer function:

* :class:`SummaryAnalysis` — the client interface: ``initial`` gives the
  lattice bottom for a function, ``transfer`` recomputes a summary from
  the function body and current callee summaries, and ``join`` merges
  summaries (used only by clients with multiple-entry effects; the
  default is replacement).
* :func:`solve` — the worklist driver.  Functions start on the worklist
  in deterministic (sorted) order; whenever a recomputed summary changes,
  the function's *callers* re-enter the worklist.  Monotone transfers on
  finite lattices terminate; a generous iteration cap guards non-monotone
  client bugs (hitting it raises, never silently under-approximates).

Summaries double as **witness carriers**: clients store not just "this
function transitively samples" but the concrete call chain proving it,
which is how F7xx diagnostics can print a real call path from the entry
point down to the draw site.  :func:`witness_chain` renders such chains.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Generic, List, Optional, Sequence, Tuple, TypeVar

from .callgraph import CallGraph, FunctionInfo

__all__ = ["SummaryAnalysis", "solve", "witness_chain"]

S = TypeVar("S")


class SummaryAnalysis(Generic[S]):
    """Client interface for one interprocedural summary computation."""

    def initial(self, fn: FunctionInfo) -> S:
        """Lattice bottom for ``fn`` (the pre-iteration summary)."""
        raise NotImplementedError

    def transfer(
        self, fn: FunctionInfo, summaries: Dict[str, S], graph: CallGraph
    ) -> S:
        """Recompute ``fn``'s summary from its body and ``summaries``.

        Must be monotone in ``summaries`` for the fixpoint to terminate:
        enriching a callee summary may only enrich (or preserve) the
        result, never shrink it.
        """
        raise NotImplementedError


def solve(
    graph: CallGraph,
    analysis: SummaryAnalysis[S],
    max_passes: int = 50,
) -> Dict[str, S]:
    """Run ``analysis`` to fixpoint over every function in ``graph``.

    Returns the summary table.  ``max_passes`` bounds full-graph sweeps
    (each function may be recomputed once per pass it is enqueued in);
    exceeding it raises ``RuntimeError`` — a non-monotone transfer bug
    must fail loudly rather than ship an under-approximate report.
    """
    order = sorted(graph.functions)
    summaries: Dict[str, S] = {
        name: analysis.initial(graph.functions[name]) for name in order
    }
    worklist = deque(order)
    queued = set(order)
    recomputations = 0
    budget = max_passes * max(len(order), 1)
    while worklist:
        name = worklist.popleft()
        queued.discard(name)
        recomputations += 1
        if recomputations > budget:
            raise RuntimeError(
                "flow analysis did not converge: non-monotone transfer in "
                f"{type(analysis).__name__}"
            )
        fn = graph.functions[name]
        updated = analysis.transfer(fn, summaries, graph)
        if updated != summaries[name]:
            summaries[name] = updated
            for caller in sorted(graph.callers.get(name, ())):
                if caller not in queued:
                    worklist.append(caller)
                    queued.add(caller)
    return summaries


def witness_chain(
    head: Tuple[str, int], tail: Optional[Sequence[Tuple[str, int]]]
) -> List[Tuple[str, int]]:
    """Prepend one ``(qualname, lineno)`` hop to a witness chain."""
    chain = [head]
    if tail:
        chain.extend(tail)
    return chain


def format_witness(chain: Sequence[Tuple[str, int]]) -> str:
    """``a.b:12 -> c.d:30`` rendering used inside diagnostic messages."""
    return " -> ".join(f"{name}:{line}" for name, line in chain)
