"""K9xx — cache-key completeness analysis.

``repro.core.cache`` makes stale hits "structurally impossible" by
hashing everything the dictionary content depends on into the key.  That
guarantee is only as good as the key call staying in sync with the build
function: PR 6's sampler-aware key was exactly the near-miss this rule
exists for — a new parameter (``sampler``) started influencing signature
bytes and the key had to grow a ``sampler_token`` in the same change.

The analysis finds every **key root**: a function that both computes a
cache key (a call whose terminal name ends in ``cache_key``) and feeds
content sinks (the payload argument of ``map_chunked`` and ``*Job``
dataclass constructions — the data that workers turn into dictionary
bytes).  For each root it builds a *derivation map* — which of the root's
parameters each local variable (transitively) derives from — and diffs:

* ``K901`` *content parameter missing from the cache key* (error) — a
  root parameter reaches a content sink but no cache-key argument derives
  from it.  A parameter is **exempt** when the root re-derives it from
  key-covered parameters (``if base_simulations is None:
  base_simulations = simulate_pattern_set(timing, pattern_list)`` — the
  key's ``timing`` + ``patterns`` already pin its bytes).
* ``K902`` *key parameter with no content influence* (warning) — a
  parameter is hashed into the key but never reaches a content sink nor
  any exempt re-derivation: over-keying, which silently splits the cache
  and hides hit-rate regressions.

Infrastructure arguments (the worker callable and execution config of
``map_chunked``) are not content: backends are bit-identical by
contract, so only the payload argument is a sink.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..diagnostics import Diagnostic
from ..rules import RULES
from .callgraph import CallGraph, CallSite, FunctionInfo

__all__ = ["analyze_cache_keys", "key_root_report", "KeyRootReport"]

#: A call whose terminal name ends with this marks the key computation.
KEY_TERMINAL_SUFFIX = "cache_key"

#: ``map_chunked(fn, payload, n_items, config, ...)`` — ``payload`` is
#: content; the callable and execution config never change bytes.  The
#: explicit ``chunks=`` sharding (the hierarchical block shards) also
#: counts as content: what flows into it records *how* the payload was
#: grouped, the same provenance discipline the sampler/hier cache
#: tokens encode.
PAYLOAD_CALLABLES = {"map_chunked"}
_PAYLOAD_INDEX = 1
_PAYLOAD_KWARGS = {"chunks"}

#: Constructions shipped to workers: ``_SignatureJob(...)`` and friends.
_JOB_TERMINAL_RE = re.compile(r"Job$")

_DERIVATION_PASSES = 10


@dataclass
class KeyRootReport:
    """The parameter accounting for one key root (used by tests/docs)."""

    fn: FunctionInfo
    key_site: CallSite
    key_params: Set[str]
    content_params: Set[str]
    #: param -> deps of its in-function re-derivation (``p = f(a, b)``).
    rederived: Dict[str, Set[str]]
    #: (terminal, lineno) of each content sink that contributed params.
    sinks: List[Tuple[str, int]]


def _walk_expr(node: ast.AST):
    yield node
    for child in ast.iter_child_nodes(node):
        yield from _walk_expr(child)


def _expr_params(
    node: ast.AST, params: Set[str], var_deps: Dict[str, Set[str]]
) -> Set[str]:
    """Root parameters an expression (transitively) reads."""
    deps: Set[str] = set()
    for sub in _walk_expr(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
            if sub.id in params:
                deps.add(sub.id)
            else:
                deps.update(var_deps.get(sub.id, ()))
    return deps


def _walk_own(node: ast.AST):
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _assignment_pairs(fn: FunctionInfo) -> List[Tuple[str, ast.AST]]:
    """(target name, value expr) for every simple assignment in the body."""
    pairs: List[Tuple[str, ast.AST]] = []
    for node in _walk_own(fn.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    pairs.append((target.id, node.value))
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            pairs.append((elt.id, node.value))
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                pairs.append((node.target.id, node.value))
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name):
                pairs.append((node.target.id, node.value))
        elif isinstance(node, ast.For):
            if isinstance(node.target, ast.Name):
                pairs.append((node.target.id, node.iter))
            elif isinstance(node.target, (ast.Tuple, ast.List)):
                for elt in node.target.elts:
                    if isinstance(elt, ast.Name):
                        pairs.append((elt.id, node.iter))
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            if isinstance(node.optional_vars, ast.Name):
                pairs.append((node.optional_vars.id, node.context_expr))
    return pairs


def _derivations(
    fn: FunctionInfo,
) -> Tuple[Dict[str, Set[str]], Dict[str, Set[str]]]:
    """Compute (var -> param deps, param -> re-derivation deps).

    Parameters always map to themselves when *read*; the second table
    records what a parameter's in-function reassignment depends on —
    the information the K901 exemption rule consults.
    """
    params = set(fn.params)
    pairs = _assignment_pairs(fn)
    var_deps: Dict[str, Set[str]] = {}
    rederived: Dict[str, Set[str]] = {}
    for _ in range(_DERIVATION_PASSES):
        changed = False
        for target, value in pairs:
            deps = _expr_params(value, params, var_deps)
            if target in params:
                previous = rederived.get(target)
                merged = deps if previous is None else previous | deps
                if merged != previous:
                    rederived[target] = merged
                    changed = True
            else:
                previous = var_deps.get(target, set())
                merged = previous | deps
                if merged != previous:
                    var_deps[target] = merged
                    changed = True
        if not changed:
            break
    return var_deps, rederived


def _content_sinks(fn: FunctionInfo) -> List[Tuple[CallSite, List[ast.AST]]]:
    """(site, content argument expressions) for each sink in the body."""
    sinks: List[Tuple[CallSite, List[ast.AST]]] = []
    for site in fn.calls:
        terminal = site.terminal
        if terminal is None:
            continue
        if terminal in PAYLOAD_CALLABLES:
            exprs = []
            if len(site.node.args) > _PAYLOAD_INDEX:
                exprs.append(site.node.args[_PAYLOAD_INDEX])
            exprs.extend(
                kw.value for kw in site.node.keywords
                if kw.arg in _PAYLOAD_KWARGS
            )
            if exprs:
                sinks.append((site, exprs))
        elif _JOB_TERMINAL_RE.search(terminal):
            exprs: List[ast.AST] = list(site.node.args)
            exprs.extend(kw.value for kw in site.node.keywords)
            if exprs:
                sinks.append((site, exprs))
    return sinks


def key_root_report(fn: FunctionInfo) -> Optional[KeyRootReport]:
    """The key/content parameter accounting for one function, if it is a
    key root (has both a cache-key call and at least one content sink)."""
    key_site: Optional[CallSite] = None
    for site in fn.calls:
        terminal = site.terminal
        if terminal is not None and terminal.endswith(KEY_TERMINAL_SUFFIX):
            key_site = site
            break
    if key_site is None:
        return None
    sinks = _content_sinks(fn)
    if not sinks:
        return None
    params = set(fn.params) - {"self"}
    var_deps, rederived = _derivations(fn)
    key_params: Set[str] = set()
    for expr in list(key_site.node.args) + [
        kw.value for kw in key_site.node.keywords
    ]:
        key_params.update(_expr_params(expr, params, var_deps))
    content_params: Set[str] = set()
    sink_meta: List[Tuple[str, int]] = []
    for site, exprs in sinks:
        contributed: Set[str] = set()
        for expr in exprs:
            contributed.update(_expr_params(expr, params, var_deps))
        content_params.update(contributed)
        sink_meta.append((site.terminal or "?", site.lineno))
    return KeyRootReport(
        fn=fn,
        key_site=key_site,
        key_params=key_params,
        content_params=content_params,
        rederived=rederived,
        sinks=sink_meta,
    )


def analyze_cache_keys(graph: CallGraph) -> List[Diagnostic]:
    """Run the K9xx analysis over a resolved call graph."""
    findings: List[Diagnostic] = []
    for name in sorted(graph.functions):
        fn = graph.functions[name]
        report = key_root_report(fn)
        if report is None:
            continue
        exempt = {
            param
            for param in report.content_params - report.key_params
            if param in report.rederived
            and report.rederived[param] <= report.key_params
        }
        missing = sorted(report.content_params - report.key_params - exempt)
        sink_text = ", ".join(
            f"`{terminal}` at line {lineno}"
            for terminal, lineno in report.sinks
        )
        for param in missing:
            findings.append(
                Diagnostic(
                    rule="K901",
                    severity=RULES["K901"].severity,
                    message=(
                        f"parameter `{param}` of `{fn.name}` influences "
                        f"dictionary content (reaches {sink_text}) but no "
                        "cache-key argument derives from it; two builds "
                        f"differing only in `{param}` collide on the same "
                        "key and the second is served stale bytes. Hash it "
                        "into the key or re-derive it from key-covered "
                        "parameters"
                    ),
                    path=fn.path,
                    line=report.key_site.lineno,
                    obj=fn.qualname,
                    engine="flow",
                )
            )
        # Over-keying: hashed parameters with no content influence.  A key
        # param backing an exempt re-derivation IS influencing content.
        backing: Set[str] = set()
        for param in exempt:
            backing.update(report.rederived[param])
        unused = sorted(
            report.key_params - report.content_params - backing
        )
        for param in unused:
            findings.append(
                Diagnostic(
                    rule="K902",
                    severity=RULES["K902"].severity,
                    message=(
                        f"parameter `{param}` of `{fn.name}` is hashed into "
                        "the cache key but never reaches dictionary content "
                        f"({sink_text}); over-keying splits the cache across "
                        "irrelevant values and hides hit-rate regressions"
                    ),
                    path=fn.path,
                    line=report.key_site.lineno,
                    obj=fn.qualname,
                    engine="flow",
                )
            )
    return findings
