"""Checked-in baseline / suppression file for the flow self-check.

The CI gate requires the flow analyses to run **clean** on ``src/repro``.
When a finding is a justified exception rather than a bug, it is recorded
in a baseline file (``lint-flow-baseline.json`` at the repo root) instead
of being silently dropped — every entry must carry a human-written
``justification`` string, so each suppression is reviewable in the diff
that introduced it:

.. code-block:: json

    {
      "format": "repro-lint-flow-baseline-v1",
      "suppressions": [
        {
          "rule": "P801",
          "path": "core/parallel.py",
          "symbol": "repro.core.parallel._run_chunk_task",
          "justification": "worker slot install IS the sanctioned protocol"
        }
      ]
    }

Matching is (rule equality, path *suffix* match, optional symbol
equality): path suffixes keep the file valid across checkouts, and the
optional ``symbol`` pin keeps a suppression from hiding a *new* finding
of the same rule in the same file.  A malformed file — wrong format tag,
missing fields, or an empty justification — is a hard error: a baseline
nobody can audit must not silently pass CI.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from ..diagnostics import Diagnostic

__all__ = ["BaselineEntry", "FlowBaseline", "load_baseline",
           "BASELINE_FORMAT", "DEFAULT_BASELINE_NAME"]

BASELINE_FORMAT = "repro-lint-flow-baseline-v1"
DEFAULT_BASELINE_NAME = "lint-flow-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One reviewed suppression."""

    rule: str
    path: str  # suffix-matched against the diagnostic path
    justification: str
    symbol: Optional[str] = None  # pins one qualname when set

    def matches(self, diagnostic: Diagnostic) -> bool:
        if diagnostic.rule != self.rule:
            return False
        if self.symbol is not None and diagnostic.obj != self.symbol:
            return False
        diag_path = os.path.normpath(diagnostic.path or "")
        return diag_path.endswith(os.path.normpath(self.path))


@dataclass
class FlowBaseline:
    """The parsed baseline plus per-entry usage accounting."""

    entries: Tuple[BaselineEntry, ...]
    source: Optional[str] = None

    def filter(
        self, diagnostics: Iterable[Diagnostic]
    ) -> Tuple[List[Diagnostic], List[Diagnostic]]:
        """Split diagnostics into (kept, suppressed)."""
        kept: List[Diagnostic] = []
        suppressed: List[Diagnostic] = []
        for diagnostic in diagnostics:
            if any(entry.matches(diagnostic) for entry in self.entries):
                suppressed.append(diagnostic)
            else:
                kept.append(diagnostic)
        return kept, suppressed

    def unused_entries(
        self, diagnostics: Iterable[Diagnostic]
    ) -> List[BaselineEntry]:
        """Entries that matched nothing — stale suppressions to delete."""
        pending = list(self.entries)
        for diagnostic in diagnostics:
            pending = [e for e in pending if not e.matches(diagnostic)]
        return pending


def _fail(source: Optional[str], message: str) -> ValueError:
    prefix = f"{source}: " if source else ""
    return ValueError(f"{prefix}invalid flow baseline: {message}")


def parse_baseline(payload: object, source: Optional[str] = None) -> FlowBaseline:
    """Validate a decoded baseline payload into a :class:`FlowBaseline`."""
    if not isinstance(payload, dict):
        raise _fail(source, "top level must be an object")
    if payload.get("format") != BASELINE_FORMAT:
        raise _fail(
            source,
            f"format must be {BASELINE_FORMAT!r}, got "
            f"{payload.get('format')!r}",
        )
    raw_entries = payload.get("suppressions")
    if not isinstance(raw_entries, list):
        raise _fail(source, "'suppressions' must be a list")
    entries: List[BaselineEntry] = []
    for index, raw in enumerate(raw_entries):
        if not isinstance(raw, dict):
            raise _fail(source, f"suppression #{index} must be an object")
        rule = raw.get("rule")
        path = raw.get("path")
        justification = raw.get("justification")
        if not isinstance(rule, str) or not rule:
            raise _fail(source, f"suppression #{index} needs a 'rule'")
        if not isinstance(path, str) or not path:
            raise _fail(source, f"suppression #{index} needs a 'path'")
        if not isinstance(justification, str) or not justification.strip():
            raise _fail(
                source,
                f"suppression #{index} ({rule} {path}) needs a non-empty "
                "'justification' — unexplained suppressions do not pass "
                "review",
            )
        symbol = raw.get("symbol")
        if symbol is not None and not isinstance(symbol, str):
            raise _fail(source, f"suppression #{index} 'symbol' must be a string")
        unknown = set(raw) - {"rule", "path", "justification", "symbol"}
        if unknown:
            raise _fail(
                source,
                f"suppression #{index} has unknown keys {sorted(unknown)}",
            )
        entries.append(
            BaselineEntry(
                rule=rule, path=path,
                justification=justification.strip(), symbol=symbol,
            )
        )
    return FlowBaseline(entries=tuple(entries), source=source)


def load_baseline(path: str) -> FlowBaseline:
    """Load and validate a baseline file; raises ``ValueError`` on any
    malformation (missing justification, wrong format tag, junk keys)."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise _fail(path, f"not valid JSON ({exc})") from exc
    return parse_baseline(payload, source=path)
