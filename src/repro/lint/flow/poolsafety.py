"""P8xx — pool-safety analysis for worker-shipped callables.

``repro.core.parallel.map_chunked`` documents a contract its type system
cannot enforce: a worker callable must be a **module-level function**
(process pools pickle it by qualified name) and must not write
module-level mutable state (each worker process has its own copy, so such
writes silently diverge from the serial build — the exact class of bug
the ``_MetricsShard`` protocol exists to prevent: workers *return* their
metrics, they never write them into shared slots).

This client finds every submit site — ``map_chunked(fn, ...)`` and
``executor.submit(fn, ...)`` — resolves the worker callable, and proves
transitively over the call graph:

* ``P801`` *worker writes module-level mutable state* — the callable (or
  any resolved transitive callee) assigns a module global (``global X``
  + store), mutates a module-level container (``X[k] = v``,
  ``X.append(...)``, ``mod.STATE.update(...)``), or rebinds another
  module's global.  Writes inside the **sanctioned protocol modules**
  (``core.parallel`` worker-initialization slots, ``resilience.chaos``
  plan installation, the ``obs`` recorder slot — each deliberately
  per-process) are exempt.  The diagnostic carries the call path from
  the worker entry down to the offending write.
* ``P802`` *worker not worker-shippable* — the callable passed to a
  submit site is a lambda or a nested function: unpicklable by the
  process backends, so the build works serially and dies (or silently
  degrades) in the pool.

As everywhere in the flow package: unresolved callees make the analysis
stay silent rather than guess.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..diagnostics import Diagnostic
from ..rules import RULES
from .callgraph import CallGraph, CallSite, FunctionInfo, ModuleInfo, dotted_name
from .dataflow import SummaryAnalysis, format_witness, solve

__all__ = ["WriteRecord", "WritesAnalysis", "analyze_pool_safety",
           "SANCTIONED_MODULE_SUFFIXES"]

#: Call terminals that ship their first positional argument to workers.
SUBMIT_TERMINALS = {"map_chunked", "submit"}

#: Container-mutating method names (on a module-level binding => a write).
_MUTATOR_ATTRS = {
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "popleft", "appendleft", "remove", "discard", "clear",
    "__setitem__", "sort", "reverse",
}

#: Modules (matched by dotted-name suffix) whose module-level writes ARE
#: the sanctioned worker protocol: the pool initializer's ``_WORKER_*``
#: slots, the chaos plan installed into each worker, and the per-process
#: obs recorder slot.  Workers returning ``_MetricsShard`` snapshots is
#: the sanctioned way to get state *out*; these are the sanctioned way
#: state gets *in*.
SANCTIONED_MODULE_SUFFIXES = ("core.parallel", "resilience.chaos", "obs")


@dataclass(frozen=True, order=True)
class WriteRecord:
    """One direct module-level-state write inside one function."""

    writer: str  # qualname of the writing function
    lineno: int
    module: str  # dotted module whose state is written
    name: str  # the global being written


def _walk_own(node: ast.AST) -> Iterator[ast.AST]:
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _local_names(fn: FunctionInfo) -> Set[str]:
    """Names bound locally (params + any Store target), minus ``global``s."""
    globals_declared: Set[str] = set()
    locals_: Set[str] = set(fn.params)
    for node in _walk_own(fn.node):
        if isinstance(node, ast.Global):
            globals_declared.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            locals_.add(node.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            locals_.add(node.name)
    return locals_ - globals_declared


def _base_binding(
    node: ast.AST, locals_: Set[str], module: ModuleInfo, graph: CallGraph
) -> Optional[Tuple[str, str]]:
    """Resolve the *root* of a store/mutation target to a module-level
    binding: returns ``(module_name, global_name)`` or ``None``.

    Handles ``X`` (own-module global), and ``mod.X`` where ``mod`` is an
    imported module of the analyzed package.
    """
    if isinstance(node, ast.Name):
        if node.id in locals_:
            return None
        if node.id in module.globals:
            return (module.name, node.id)
        return None
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        head = node.value.id
        if head in locals_:
            return None
        target = module.imports.get(head)
        if target is not None and target in graph.modules:
            other = graph.modules[target]
            if node.attr in other.globals:
                return (other.name, node.attr)
    return None


def direct_writes(fn: FunctionInfo, graph: CallGraph) -> List[WriteRecord]:
    """Module-level-state writes performed directly by ``fn``'s body."""
    module = graph.modules[fn.module]
    locals_ = _local_names(fn)
    globals_declared: Set[str] = set()
    for node in _walk_own(fn.node):
        if isinstance(node, ast.Global):
            globals_declared.update(node.names)
    records: List[WriteRecord] = []

    def record(module_name: str, global_name: str, lineno: int) -> None:
        records.append(
            WriteRecord(fn.qualname, lineno, module_name, global_name)
        )

    for node in _walk_own(fn.node):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            # ``global X`` + rebinding
            if isinstance(target, ast.Name) and target.id in globals_declared:
                record(module.name, target.id, node.lineno)
            # ``X[k] = v`` / ``X.attr = v`` / ``mod.STATE[k] = v``
            elif isinstance(target, (ast.Subscript, ast.Attribute)):
                binding = _base_binding(
                    target.value, locals_, module, graph
                )
                if binding is not None:
                    record(binding[0], binding[1], node.lineno)
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATOR_ATTRS:
                binding = _base_binding(
                    node.func.value, locals_, module, graph
                )
                if binding is not None:
                    mod = graph.modules[binding[0]]
                    if binding[1] in mod.mutable_globals:
                        record(binding[0], binding[1], node.lineno)
        if isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id in globals_declared:
                    record(module.name, target.id, node.lineno)
    return sorted(records)


class WritesAnalysis(SummaryAnalysis[FrozenSet[WriteRecord]]):
    """Transitive closure of module-state writes (set-union lattice)."""

    def __init__(self, graph: CallGraph) -> None:
        self.direct = {
            name: frozenset(direct_writes(fn, graph))
            for name, fn in graph.functions.items()
        }

    def initial(self, fn: FunctionInfo) -> FrozenSet[WriteRecord]:
        return frozenset()

    def transfer(
        self,
        fn: FunctionInfo,
        summaries: Dict[str, FrozenSet[WriteRecord]],
        graph: CallGraph,
    ) -> FrozenSet[WriteRecord]:
        combined = set(self.direct[fn.qualname])
        for site in fn.calls:
            if site.callee is not None:
                combined.update(summaries.get(site.callee, ()))
        return frozenset(combined)


def _call_path(
    graph: CallGraph, src: str, dst: str
) -> List[Tuple[str, int]]:
    """Deterministic BFS path ``src -> ... -> dst`` as witness hops."""
    if src == dst:
        return []
    parents: Dict[str, Tuple[str, int]] = {}
    frontier = [src]
    seen = {src}
    while frontier:
        next_frontier: List[str] = []
        for name in frontier:
            fn = graph.functions[name]
            for site in sorted(
                fn.calls, key=lambda s: (s.callee or "", s.lineno)
            ):
                callee = site.callee
                if callee is None or callee in seen:
                    continue
                parents[callee] = (name, site.lineno)
                if callee == dst:
                    hops: List[Tuple[str, int]] = []
                    cursor = dst
                    while cursor != src:
                        parent, lineno = parents[cursor]
                        hops.append((parent, lineno))
                        cursor = parent
                    return list(reversed(hops))
                seen.add(callee)
                next_frontier.append(callee)
        frontier = next_frontier
    return []


def _sanctioned(module_name: str, suffixes: Tuple[str, ...]) -> bool:
    return any(
        module_name == suffix or module_name.endswith("." + suffix)
        for suffix in suffixes
    )


def _worker_target(
    site: CallSite, fn: FunctionInfo, graph: CallGraph
) -> Tuple[Optional[str], Optional[ast.AST]]:
    """Resolve the worker callable at a submit site.

    Returns ``(qualname_or_None, unshippable_node_or_None)`` — the second
    slot is set when the argument is a lambda or nested def (P802).
    """
    if not site.node.args:
        return None, None
    arg = site.node.args[0]
    if isinstance(arg, ast.Lambda):
        return None, arg
    raw = dotted_name(arg)
    if raw is None:
        return None, None
    module = graph.modules[fn.module]
    if "." not in raw:
        for nested in fn.nested:
            if nested.endswith(f".<locals>.{raw}"):
                return None, graph.functions[nested].node
    resolved = graph.resolve_in_module(module, raw)
    if resolved is not None and ".<locals>." in resolved:
        return None, graph.functions[resolved].node
    return resolved, None


def analyze_pool_safety(
    graph: CallGraph,
    sanctioned: Tuple[str, ...] = SANCTIONED_MODULE_SUFFIXES,
) -> List[Diagnostic]:
    """Run the P8xx analysis over a resolved call graph."""
    summaries = solve(graph, WritesAnalysis(graph))
    findings: List[Diagnostic] = []
    for name in sorted(graph.functions):
        fn = graph.functions[name]
        for site in fn.calls:
            terminal = site.terminal
            if terminal not in SUBMIT_TERMINALS:
                continue
            worker, unshippable = _worker_target(site, fn, graph)
            if unshippable is not None:
                findings.append(
                    Diagnostic(
                        rule="P802",
                        severity=RULES["P802"].severity,
                        message=(
                            f"callable shipped to `{terminal}` here is not a "
                            "module-level function (lambda or nested def); "
                            "the process backends cannot pickle it, so the "
                            "build only works serially"
                        ),
                        path=fn.path,
                        line=site.lineno,
                        obj=fn.qualname,
                        engine="flow",
                    )
                )
                continue
            if worker is None:
                continue
            reported: Set[Tuple[str, str, str]] = set()
            for write in sorted(summaries.get(worker, ())):
                if _sanctioned(write.module, sanctioned):
                    continue
                dedupe = (write.module, write.name, write.writer)
                if dedupe in reported:
                    continue
                reported.add(dedupe)
                hops = _call_path(graph, worker, write.writer)
                witness = hops + [(write.writer, write.lineno)]
                findings.append(
                    Diagnostic(
                        rule="P801",
                        severity=RULES["P801"].severity,
                        message=(
                            f"worker `{worker.rsplit('.', 1)[-1]}` shipped to "
                            f"`{terminal}` writes module-level state "
                            f"`{write.module}.{write.name}`; each pool worker "
                            "mutates its own copy, so parallel results "
                            "silently diverge from serial ones. Return the "
                            "state with the chunk results instead (the "
                            "_MetricsShard protocol). Write path: "
                            f"{format_witness(witness)}"
                        ),
                        path=fn.path,
                        line=site.lineno,
                        obj=fn.qualname,
                        engine="flow",
                    )
                )
    return findings
