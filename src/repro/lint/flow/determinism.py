"""F7xx — interprocedural RNG-stream determinism analysis.

The file-local D1xx rules can prove a *single* function threads its
generator; they cannot see a seeded stream being created in one function
and silently dropped at a call boundary three files away.  This client
tracks seeded-generator **values** (results of the ``repro.rng`` spawn
helpers, ``SampleSpace.child_rng``, seeded ``default_rng`` — the creation
sites) through parameters and calls, and combines them with a
whole-program **samples** summary (does calling this function transitively
reach a random draw?) computed by the dataflow framework:

* ``F701`` *dropped generator at call boundary* — a function holds a live
  seeded generator (created locally or received as a parameter) and calls
  a generator-accepting callee that transitively samples **without
  forwarding any stream** — the callee silently falls back to its own
  default stream and the caller's threading has no effect.  The
  diagnostic carries a call-path witness from the drop site down to the
  actual draw.
* ``F702`` *seeded stream created and dropped* — the result of a
  creation site is never drawn from, passed on, stored or returned: the
  classic "seeded but unused rng" bug where the code that should consume
  the stream samples elsewhere.
* ``F703`` *generator-valued parameter default* — an entry point's
  ``rng``-like parameter defaults to a *constructed* generator expression
  (evaluated once at ``def`` time), so every unthreaded call shares one
  stateful stream and results depend on call order.

Precision over recall: a call the graph cannot resolve, a ``**kwargs``
forward, or any argument that *might* carry a stream makes the analysis
stay silent.  Anything it does report comes with a concrete witness.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..diagnostics import Diagnostic
from ..rules import RULES
from .callgraph import CallGraph, CallSite, FunctionInfo, dotted_name
from .dataflow import SummaryAnalysis, format_witness, solve

__all__ = ["RngSummary", "SamplesAnalysis", "analyze_determinism"]

#: Parameter names that carry an explicit generator.
RNG_PARAMS = {"rng", "generator"}

#: Call-site argument keywords whose presence means "a stream (or the
#: seed that derives one) was threaded" — the analysis then stays silent.
THREAD_HINT_KEYWORDS = {"rng", "generator", "space", "seed", "rng_seed"}

#: Terminal callee names whose result is a seeded stream (creation sites:
#: the repro.rng spawn helpers, SampleSpace.child_rng, numpy construction).
PRODUCER_TERMINALS = {
    "spawn_generator", "compat_from_seedsequence", "coerce_rng",
    "child_rng", "default_rng", "CompatRandom", "GeneratorAdapter",
}

#: Method names that consume entropy when called on a generator value.
DRAW_ATTRS = {
    "random", "integers", "normal", "standard_normal", "uniform", "choice",
    "shuffle", "permutation", "exponential", "poisson", "binomial", "gamma",
    "beta", "randint", "random_sample", "sample", "bytes", "lognormal",
    "triangular", "vonmises", "weibull", "random_integers",
}

#: Witness chains are capped so mutual recursion cannot grow them forever
#: (the lattice must stay finite for the fixpoint to terminate).
_MAX_CHAIN = 16


def _walk_own(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs/lambdas."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


@dataclass(frozen=True)
class _LocalFacts:
    """Per-function syntactic facts (computed once, outside the fixpoint)."""

    #: Names that hold a seeded stream: rng-like params + producer results
    #: + direct aliases of either.
    rng_values: frozenset
    #: Line numbers of local draw sites (``<rng value>.<draw attr>(...)``).
    draw_lines: Tuple[int, ...]
    #: Producer-assigned name -> (assignment line, times the name is read).
    producers: Tuple[Tuple[str, int, int], ...]


def _local_facts(fn: FunctionInfo) -> _LocalFacts:
    rng_values: Set[str] = {p for p in fn.params if p in RNG_PARAMS}
    assigns: List[Tuple[str, ast.AST, int]] = []
    for node in _walk_own(fn.node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                assigns.append((target.id, node.value, node.lineno))
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                assigns.append((node.target.id, node.value, node.lineno))
    # two passes so ``a = spawn_generator(...); b = a`` marks both
    producer_lines: Dict[str, int] = {}
    for _pass in range(2):
        for name, value, lineno in assigns:
            if isinstance(value, ast.Call):
                terminal = dotted_name(value.func)
                if terminal and terminal.rsplit(".", 1)[-1] in PRODUCER_TERMINALS:
                    rng_values.add(name)
                    producer_lines.setdefault(name, lineno)
            elif isinstance(value, ast.Name) and value.id in rng_values:
                rng_values.add(name)
    draw_lines: List[int] = []
    loads: Dict[str, int] = {name: 0 for name in producer_lines}
    for node in _walk_own(fn.node):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            base = node.func.value
            if (
                isinstance(base, ast.Name)
                and base.id in rng_values
                and node.func.attr in DRAW_ATTRS
            ):
                draw_lines.append(node.lineno)
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if node.id in loads:
                loads[node.id] += 1
    producers = tuple(
        sorted((name, lineno, loads[name]) for name, lineno in
               producer_lines.items())
    )
    return _LocalFacts(frozenset(rng_values), tuple(sorted(draw_lines)),
                       producers)


@dataclass(frozen=True)
class RngSummary:
    """Lattice element: does calling this function reach a random draw?

    ``samples`` is ``None`` (bottom: no draw known) or the witness chain —
    ``((qualname, lineno), ...)`` hops ending at the draw site.
    """

    samples: Optional[Tuple[Tuple[str, int], ...]] = None


class SamplesAnalysis(SummaryAnalysis[RngSummary]):
    """Interprocedural "transitively samples" summary with witnesses."""

    def __init__(self, facts: Dict[str, _LocalFacts]) -> None:
        self.facts = facts

    def initial(self, fn: FunctionInfo) -> RngSummary:
        return RngSummary()

    def transfer(
        self, fn: FunctionInfo, summaries: Dict[str, RngSummary],
        graph: CallGraph,
    ) -> RngSummary:
        facts = self.facts[fn.qualname]
        best: Optional[Tuple[Tuple[str, int], ...]] = None
        if facts.draw_lines:
            best = ((fn.qualname, facts.draw_lines[0]),)
        else:
            for site in fn.calls:
                callee = site.callee
                if callee is None:
                    continue
                sub = summaries.get(callee)
                if sub is None or sub.samples is None:
                    continue
                if any(hop[0] == fn.qualname for hop in sub.samples):
                    continue  # recursion guard: never extend through self
                chain = ((fn.qualname, site.lineno),) + sub.samples
                chain = chain[:_MAX_CHAIN]
                if best is None or (len(chain), chain) < (len(best), best):
                    best = chain
        return RngSummary(samples=best)


def _positional_param(
    callee: FunctionInfo, site: CallSite, index: int
) -> Optional[str]:
    """The parameter name a positional argument binds to, if derivable."""
    offset = 0
    if callee.owner_class is not None and site.raw and site.raw.startswith("self."):
        offset = 1  # the bound-method call skips ``self``
    params = callee.params
    slot = index + offset
    return params[slot] if slot < len(params) else None


def _call_threads_stream(
    site: CallSite, callee: FunctionInfo, rng_values: frozenset
) -> bool:
    """Conservatively: does this call pass any stream (or seed) through?"""
    node = site.node
    if any(isinstance(arg, ast.Starred) for arg in node.args):
        return True  # *args forward — no claim
    for keyword in node.keywords:
        if keyword.arg is None:  # **kwargs forward — no claim
            return True
        if keyword.arg in THREAD_HINT_KEYWORDS:
            return True
        if isinstance(keyword.value, ast.Name) and keyword.value.id in rng_values:
            return True
    for index, arg in enumerate(node.args):
        if isinstance(arg, ast.Name) and arg.id in rng_values:
            return True
        param = _positional_param(callee, site, index)
        if param is not None and param in THREAD_HINT_KEYWORDS:
            return True
    return False


def _emit(findings: List[Diagnostic], rule_id: str, fn: FunctionInfo,
          lineno: int, message: str) -> None:
    findings.append(
        Diagnostic(
            rule=rule_id,
            severity=RULES[rule_id].severity,
            message=message,
            path=fn.path,
            line=lineno,
            obj=fn.qualname,
            engine="flow",
        )
    )


def analyze_determinism(graph: CallGraph) -> List[Diagnostic]:
    """Run the F7xx analysis over a resolved call graph."""
    facts = {name: _local_facts(fn) for name, fn in graph.functions.items()}
    summaries = solve(graph, SamplesAnalysis(facts))
    findings: List[Diagnostic] = []
    for name in sorted(graph.functions):
        fn = graph.functions[name]
        local = facts[name]

        # F703: generator-valued parameter defaults (def-time streams).
        for param, default in sorted(fn.defaults.items()):
            if param not in RNG_PARAMS:
                continue
            if isinstance(default, ast.Call):
                terminal = dotted_name(default.func)
                if terminal and terminal.rsplit(".", 1)[-1] in PRODUCER_TERMINALS:
                    _emit(
                        findings, "F703", fn, fn.lineno,
                        f"`{fn.name}` defaults parameter `{param}` to a "
                        "generator constructed at def time; every unthreaded "
                        "call shares that one stateful stream, so results "
                        "depend on call order. Default to None and derive "
                        "the stream inside the call",
                    )

        # F702: seeded stream created, then never read again.
        for var, lineno, reads in local.producers:
            if reads == 0:
                _emit(
                    findings, "F702", fn, lineno,
                    f"seeded stream `{var}` is created here and never used: "
                    "no draw, no forwarding, no return. The sampling this "
                    "stream was meant to drive runs on some other generator",
                )

        # F701: live stream in hand, sampling callee invoked without it.
        if not local.rng_values:
            continue
        for site in fn.calls:
            callee_name = site.callee
            if callee_name is None:
                continue
            callee = graph.functions[callee_name]
            rng_param = sorted(set(callee.params) & RNG_PARAMS)
            if not rng_param:
                continue
            summary = summaries[callee_name]
            if summary.samples is None:
                continue
            if callee.qualname == fn.qualname:
                continue
            if rng_param[0] not in callee.defaults:
                continue  # required param: a valid call must already bind it
            if _call_threads_stream(site, callee, local.rng_values):
                continue
            witness = ((fn.qualname, site.lineno),) + summary.samples
            _emit(
                findings, "F701", fn, site.lineno,
                f"`{fn.name}` holds a seeded generator but calls "
                f"`{callee.name}` without forwarding it; the callee falls "
                "back to its own default stream and the caller's threading "
                f"has no effect. Draw path: {format_witness(witness[:_MAX_CHAIN])}",
            )
    return findings
