"""Lint orchestration: compose engines into gateable reports.

Entry points used by the CLI (``python -m repro lint``), by CI, and by the
test-suite's self-check gate:

* :func:`lint_code` — determinism rules over a source tree (default: the
  installed ``repro`` package itself),
* :func:`lint_models` — semantic rules over the shipped benchmark
  circuits (plus, optionally, a dictionary-cache directory),
* :func:`lint_flow` — the whole-program dataflow analyses
  (``F7xx``/``P8xx``/``K9xx``, :mod:`repro.lint.flow`) with baseline
  suppression,
* :func:`run_lint` — all of the above, per the requested mode;
  ``manifest`` paths additionally audit observability run manifests
  (``S5xx``) and ``checkpoints`` paths audit resilience checkpoints
  (``R6xx``).

``changed`` scoping (the ``--changed [REF]`` fast pre-push loop) filters
*code and flow findings* to files touched relative to a git ref.  The
flow engine still analyzes the whole program — interprocedural edges
must stay complete — only the reported anchors are scoped.
"""

from __future__ import annotations

import json
import os
import subprocess
from typing import Iterable, List, Optional, Sequence, Set, Union

from .determinism import default_code_root, lint_paths
from .diagnostics import LintReport
from .flow import DEFAULT_BASELINE_NAME, FlowBaseline, analyze_flow, load_baseline
from .models import check_benchmark, check_cache
from .obs import check_manifest
from .resilience import (
    check_checkpoint,
    check_checkpoint_dir,
    check_wire_taxonomy,
)
from .rules import RULES

__all__ = [
    "changed_files",
    "lint_checkpoints",
    "lint_code",
    "lint_flow",
    "lint_manifests",
    "lint_models",
    "run_lint",
    "render_rule_catalog",
]


def lint_code(
    paths: Optional[Iterable[str]] = None, suppress: Sequence[str] = ()
) -> LintReport:
    """Run the determinism linter; ``paths`` defaults to the repro package."""
    report = LintReport()
    report.extend(lint_paths(paths), suppress=suppress)
    return report


def lint_models(
    circuits: Optional[Sequence[str]] = None,
    cache_dir: Optional[str] = None,
    seed: int = 0,
    n_samples: int = 16,
    suppress: Sequence[str] = (),
) -> LintReport:
    """Run the model checker over benchmark circuits (default: all shipped).

    ``cache_dir`` additionally audits a dictionary-cache directory, and
    every models pass audits the service wire-error taxonomy (R605).
    """
    from ..circuits.benchmarks import benchmark_names

    report = LintReport()
    for name in circuits if circuits else benchmark_names():
        report.extend(
            check_benchmark(name, seed=seed, n_samples=n_samples),
            suppress=suppress,
        )
    if cache_dir:
        report.extend(check_cache(cache_dir), suppress=suppress)
    report.extend(check_wire_taxonomy(), suppress=suppress)
    return report


def lint_flow(
    root: Optional[str] = None,
    package: Optional[str] = None,
    baseline: Optional[Union[str, FlowBaseline]] = None,
    suppress: Sequence[str] = (),
    only_paths: Optional[Set[str]] = None,
) -> LintReport:
    """Run the whole-program flow analyses (``F7xx``/``P8xx``/``K9xx``).

    ``root`` defaults to the installed ``repro`` package (the self-check).
    ``baseline`` is a :class:`FlowBaseline`, a path to one, or ``None`` —
    in which case ``lint-flow-baseline.json`` in the current directory is
    used when present.  Baseline-suppressed findings count into the
    report's ``suppressed`` tally so the audit trail stays visible.
    ``only_paths`` (absolute paths) scopes the *reported* findings; the
    analysis itself always covers the whole program.
    """
    if isinstance(baseline, str):
        baseline = load_baseline(baseline)
    elif baseline is None and os.path.exists(DEFAULT_BASELINE_NAME):
        baseline = load_baseline(DEFAULT_BASELINE_NAME)
    findings, baseline_suppressed = analyze_flow(
        root=root, package=package, baseline=baseline
    )
    if only_paths is not None:
        findings = [
            d for d in findings
            if d.path and os.path.abspath(d.path) in only_paths
        ]
    report = LintReport()
    report.extend(findings, suppress=suppress)
    report.suppressed += len(baseline_suppressed)
    return report


def changed_files(ref: str = "HEAD", cwd: Optional[str] = None) -> Set[str]:
    """Absolute paths of files changed vs ``ref`` plus untracked files.

    Raises ``RuntimeError`` when git is unavailable or ``ref`` does not
    resolve — a broken fast path must not silently lint nothing.
    """
    base = os.path.abspath(cwd or os.getcwd())
    paths: Set[str] = set()
    for args in (
        ["git", "diff", "--name-only", ref],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                args, cwd=base, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError) as exc:
            detail = ""
            if isinstance(exc, subprocess.CalledProcessError):
                detail = f": {exc.stderr.strip()}"
            raise RuntimeError(
                f"--changed requires a git checkout and a resolvable ref "
                f"({' '.join(args)} failed{detail})"
            ) from exc
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            cwd=base, capture_output=True, text=True, check=True,
        ).stdout.strip()
        for line in proc.stdout.splitlines():
            if line.strip():
                paths.add(os.path.abspath(os.path.join(top, line.strip())))
    return paths


def lint_manifests(
    manifests: Iterable[str], suppress: Sequence[str] = ()
) -> LintReport:
    """Audit observability run manifests (``S5xx`` rules)."""
    report = LintReport()
    for path in manifests:
        report.extend(check_manifest(path), suppress=suppress)
    return report


def lint_checkpoints(
    checkpoints: Iterable[str], suppress: Sequence[str] = ()
) -> LintReport:
    """Audit resilience checkpoints (``R6xx``); files or directories."""
    report = LintReport()
    for path in checkpoints:
        findings = (
            check_checkpoint_dir(path)
            if os.path.isdir(path)
            else check_checkpoint(path)
        )
        report.extend(findings, suppress=suppress)
    return report


def run_lint(
    mode: str = "all",
    paths: Optional[Iterable[str]] = None,
    circuits: Optional[Sequence[str]] = None,
    cache_dir: Optional[str] = None,
    seed: int = 0,
    n_samples: int = 16,
    suppress: Sequence[str] = (),
    manifests: Optional[Sequence[str]] = None,
    checkpoints: Optional[Sequence[str]] = None,
    flow_root: Optional[str] = None,
    flow_package: Optional[str] = None,
    flow_baseline: Optional[Union[str, FlowBaseline]] = None,
    changed: Optional[str] = None,
) -> LintReport:
    """Run the requested engines; ``mode`` is ``code``/``models``/``all``/
    ``manifests``/``flow`` (the last two are single-engine modes).

    ``manifests`` and ``checkpoints`` paths are audited in every mode.
    ``changed`` (a git ref) scopes code and flow *findings* to files
    touched relative to the ref — the fast pre-push loop.
    """
    if mode not in ("code", "models", "all", "manifests", "flow"):
        raise ValueError(f"unknown lint mode {mode!r}")
    touched: Optional[Set[str]] = None
    if changed is not None:
        touched = changed_files(changed)
    report = LintReport()
    if mode in ("code", "all"):
        if touched is not None and paths is None:
            # Scope to touched files *inside the linted package* — tests
            # and scripts are outside the determinism rules' contract.
            root = os.path.abspath(default_code_root())
            scoped = sorted(
                p for p in touched
                if p.endswith(".py") and p.startswith(root + os.sep)
            )
            code = lint_code(scoped, suppress=suppress) if scoped else LintReport()
        else:
            code = lint_code(paths, suppress=suppress)
        report.extend(code.diagnostics)
        report.suppressed += code.suppressed
    if mode in ("flow", "all"):
        flow = lint_flow(
            root=flow_root,
            package=flow_package,
            baseline=flow_baseline,
            suppress=suppress,
            only_paths=touched,
        )
        report.extend(flow.diagnostics)
        report.suppressed += flow.suppressed
    if mode in ("models", "all"):
        models = lint_models(
            circuits, cache_dir=cache_dir, seed=seed, n_samples=n_samples,
            suppress=suppress,
        )
        report.extend(models.diagnostics)
        report.suppressed += models.suppressed
    if manifests:
        audited = lint_manifests(manifests, suppress=suppress)
        report.extend(audited.diagnostics)
        report.suppressed += audited.suppressed
    if checkpoints:
        audited = lint_checkpoints(checkpoints, suppress=suppress)
        report.extend(audited.diagnostics)
        report.suppressed += audited.suppressed
    return report


def render_rule_catalog() -> str:
    """Human-readable rule listing for ``lint --rules``."""
    lines: List[str] = []
    for rule in sorted(RULES.values(), key=lambda r: r.id):
        lines.append(
            f"{rule.id}  {rule.severity.value:7s} [{rule.engine:5s}] "
            f"{rule.title}"
        )
        lines.append(f"      {rule.description}")
    return "\n".join(lines)


def render_report(report: LintReport, fmt: str = "text") -> str:
    """Render a report in the requested output format."""
    if fmt == "json":
        return json.dumps(report.to_payload(), indent=2, sort_keys=True)
    if fmt == "text":
        return report.format_text()
    raise ValueError(f"unknown lint output format {fmt!r}")
