"""Lint orchestration: compose engines into gateable reports.

Entry points used by the CLI (``python -m repro lint``), by CI, and by the
test-suite's self-check gate:

* :func:`lint_code` — determinism rules over a source tree (default: the
  installed ``repro`` package itself),
* :func:`lint_models` — semantic rules over the shipped benchmark
  circuits (plus, optionally, a dictionary-cache directory),
* :func:`run_lint` — both, per the requested mode; ``manifest`` paths
  additionally audit observability run manifests (``S5xx``) and
  ``checkpoints`` paths audit resilience checkpoints (``R6xx``).
"""

from __future__ import annotations

import json
import os
from typing import Iterable, List, Optional, Sequence

from .determinism import lint_paths
from .diagnostics import LintReport
from .models import check_benchmark, check_cache
from .obs import check_manifest
from .resilience import check_checkpoint, check_checkpoint_dir
from .rules import RULES

__all__ = [
    "lint_checkpoints",
    "lint_code",
    "lint_manifests",
    "lint_models",
    "run_lint",
    "render_rule_catalog",
]


def lint_code(
    paths: Optional[Iterable[str]] = None, suppress: Sequence[str] = ()
) -> LintReport:
    """Run the determinism linter; ``paths`` defaults to the repro package."""
    report = LintReport()
    report.extend(lint_paths(paths), suppress=suppress)
    return report


def lint_models(
    circuits: Optional[Sequence[str]] = None,
    cache_dir: Optional[str] = None,
    seed: int = 0,
    n_samples: int = 16,
    suppress: Sequence[str] = (),
) -> LintReport:
    """Run the model checker over benchmark circuits (default: all shipped).

    ``cache_dir`` additionally audits a dictionary-cache directory.
    """
    from ..circuits.benchmarks import benchmark_names

    report = LintReport()
    for name in circuits if circuits else benchmark_names():
        report.extend(
            check_benchmark(name, seed=seed, n_samples=n_samples),
            suppress=suppress,
        )
    if cache_dir:
        report.extend(check_cache(cache_dir), suppress=suppress)
    return report


def lint_manifests(
    manifests: Iterable[str], suppress: Sequence[str] = ()
) -> LintReport:
    """Audit observability run manifests (``S5xx`` rules)."""
    report = LintReport()
    for path in manifests:
        report.extend(check_manifest(path), suppress=suppress)
    return report


def lint_checkpoints(
    checkpoints: Iterable[str], suppress: Sequence[str] = ()
) -> LintReport:
    """Audit resilience checkpoints (``R6xx``); files or directories."""
    report = LintReport()
    for path in checkpoints:
        findings = (
            check_checkpoint_dir(path)
            if os.path.isdir(path)
            else check_checkpoint(path)
        )
        report.extend(findings, suppress=suppress)
    return report


def run_lint(
    mode: str = "all",
    paths: Optional[Iterable[str]] = None,
    circuits: Optional[Sequence[str]] = None,
    cache_dir: Optional[str] = None,
    seed: int = 0,
    n_samples: int = 16,
    suppress: Sequence[str] = (),
    manifests: Optional[Sequence[str]] = None,
    checkpoints: Optional[Sequence[str]] = None,
) -> LintReport:
    """Run the requested engines; ``mode`` is ``code``/``models``/``all``/
    ``manifests`` (manifests-only — skips both other engines).

    ``manifests`` and ``checkpoints`` paths are audited in every mode.
    """
    if mode not in ("code", "models", "all", "manifests"):
        raise ValueError(f"unknown lint mode {mode!r}")
    report = LintReport()
    if mode in ("code", "all"):
        code = lint_code(paths, suppress=suppress)
        report.extend(code.diagnostics)
        report.suppressed += code.suppressed
    if mode in ("models", "all"):
        models = lint_models(
            circuits, cache_dir=cache_dir, seed=seed, n_samples=n_samples,
            suppress=suppress,
        )
        report.extend(models.diagnostics)
        report.suppressed += models.suppressed
    if manifests:
        audited = lint_manifests(manifests, suppress=suppress)
        report.extend(audited.diagnostics)
        report.suppressed += audited.suppressed
    if checkpoints:
        audited = lint_checkpoints(checkpoints, suppress=suppress)
        report.extend(audited.diagnostics)
        report.suppressed += audited.suppressed
    return report


def render_rule_catalog() -> str:
    """Human-readable rule listing for ``lint --rules``."""
    lines: List[str] = []
    for rule in sorted(RULES.values(), key=lambda r: r.id):
        lines.append(
            f"{rule.id}  {rule.severity.value:7s} [{rule.engine:5s}] "
            f"{rule.title}"
        )
        lines.append(f"      {rule.description}")
    return "\n".join(lines)


def render_report(report: LintReport, fmt: str = "text") -> str:
    """Render a report in the requested output format."""
    if fmt == "json":
        return json.dumps(report.to_payload(), indent=2, sort_keys=True)
    if fmt == "text":
        return report.format_text()
    raise ValueError(f"unknown lint output format {fmt!r}")
