"""repro.resilience — fault-tolerant execution for long Monte-Carlo runs.

The Section I protocol is a long campaign: N defect-injection trials per
circuit, each a statistical dynamic timing simulation over thousands of
samples, fanned out across worker pools with an on-disk dictionary
cache.  At that scale the failure modes are mundane and inevitable — a
worker gets OOM-killed, a chunk hangs, the filesystem hiccups, the
operator hits Ctrl-C at hour two.  This package makes every one of them
either *recoverable* or a *typed, diagnosable error*:

* :mod:`~repro.resilience.policy` — retry/timeout/backoff policies for
  the chunked executor (:func:`repro.core.parallel.map_chunked`), with
  deterministic seeded jitter and a process -> thread -> serial
  degradation ladder,
* :mod:`~repro.resilience.checkpoint` — atomic, schema-pinned
  checkpoint files written at trial boundaries, carrying the exact RNG
  state so a resumed campaign is bit-identical to an uninterrupted one,
* :mod:`~repro.resilience.chaos` — the deterministic fault-injection
  harness (kill/hang/slow workers, transient exceptions, on-disk
  corruption) driving the chaos test suite,
* :mod:`~repro.resilience.errors` — the failure taxonomy the CLI maps
  to exit codes.

Nothing here touches a simulation RNG stream: retried chunks re-derive
their generators from the same SeedSequence spawn keys, backoff jitter
is hash-derived, and checkpoints persist generator state verbatim — the
determinism guarantee survives every recovery path (see
``tests/test_resilience.py`` and ``docs/architecture.md`` §11).
"""

from .errors import (
    ChaosError,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointMismatchError,
    ChunkTimeoutError,
    ResilienceError,
    RetryExhaustedError,
    TransientChaosError,
    TransientError,
    WorkerPoolBrokenError,
)
from .policy import (
    DEGRADATION_LADDER,
    RetryPolicy,
    deterministic_jitter,
    fallback_rungs,
    resolve_retry,
    without_sleep,
)
from .checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_SCHEMA,
    CHECKPOINT_VERSION,
    build_checkpoint,
    checkpoint_checksum,
    load_checkpoint,
    validate_checkpoint,
    write_checkpoint,
)
from .chaos import (
    ChaosEvent,
    ChaosPlan,
    chaos_active,
    corrupt_file,
)
from . import chaos

__all__ = [
    "ChaosError",
    "ChaosEvent",
    "ChaosPlan",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointMismatchError",
    "ChunkTimeoutError",
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_SCHEMA",
    "CHECKPOINT_VERSION",
    "DEGRADATION_LADDER",
    "ResilienceError",
    "RetryExhaustedError",
    "RetryPolicy",
    "TransientChaosError",
    "TransientError",
    "WorkerPoolBrokenError",
    "build_checkpoint",
    "chaos",
    "chaos_active",
    "checkpoint_checksum",
    "corrupt_file",
    "deterministic_jitter",
    "fallback_rungs",
    "load_checkpoint",
    "resolve_retry",
    "validate_checkpoint",
    "without_sleep",
    "write_checkpoint",
]
