"""Atomic, schema-pinned checkpoint files for long Monte-Carlo campaigns.

A checkpoint is one JSON document written at *trial-boundary*
granularity: after trial ``k`` commits, the file on disk describes a
fully consistent prefix of the campaign — the completed trial records
plus the exact RNG state needed to run trial ``k+1`` bit-identically.
An interrupted-then-resumed run is therefore indistinguishable from an
uninterrupted one (proven in ``tests/test_resilience.py``).

Three structural guarantees, mirroring :mod:`repro.obs.manifest`:

* **atomicity** — temp file + ``os.replace`` in the same directory, so a
  kill mid-write leaves either the previous checkpoint or a stray
  ``.tmp_ckpt_*`` file (flagged by lint rule R604), never a torn one,
* **schema pinning** — :data:`CHECKPOINT_SCHEMA` plus the hand-rolled
  :func:`validate_checkpoint` (same no-third-party-``jsonschema`` policy
  as the rest of the repo); violations surface as
  :class:`~repro.resilience.errors.CheckpointCorruptError` on load and
  as R602 lint findings on audit,
* **identity binding** — the checkpoint embeds a free-form ``identity``
  object (circuit/timing fingerprints, seed, protocol knobs).  Resuming
  under a different identity raises
  :class:`~repro.resilience.errors.CheckpointMismatchError` instead of
  silently splicing two unrelated campaigns.

A payload ``checksum`` (SHA-256 over the canonical JSON of the mutable
sections) detects bit rot and hand edits independently of JSON
well-formedness.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, List, Optional

from .errors import CheckpointCorruptError, CheckpointMismatchError
from . import chaos

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CHECKPOINT_SCHEMA",
    "TMP_PREFIX",
    "build_checkpoint",
    "checkpoint_checksum",
    "load_checkpoint",
    "validate_checkpoint",
    "write_checkpoint",
]

CHECKPOINT_VERSION = 1
CHECKPOINT_FORMAT = "repro-checkpoint-v1"

#: Temp-file prefix of the atomic writer; a surviving file with this
#: prefix means a writer died mid-write (lint rule R604).
TMP_PREFIX = ".tmp_ckpt_"

#: Checkpoint kinds the library writes today (append-only, like rule IDs).
KINDS = ("evaluation", "table1")

#: Documented checkpoint shape (JSON-Schema subset).
CHECKPOINT_SCHEMA: Dict = {
    "type": "object",
    "required": [
        "format", "version", "kind", "identity", "progress", "state", "checksum",
    ],
    "properties": {
        "format": {"type": "string", "const": CHECKPOINT_FORMAT},
        "version": {"type": "integer", "const": CHECKPOINT_VERSION},
        "kind": {"enum": list(KINDS)},
        "identity": {"type": "object"},
        "progress": {
            "type": "object",
            "required": ["completed", "total"],
            "properties": {
                "completed": {"type": "integer", "minimum": 0},
                "total": {"type": "integer", "minimum": 0},
            },
        },
        "state": {"type": "object"},
        "checksum": {"type": "string", "minLength": 64, "maxLength": 64},
    },
}


def _canonical(payload) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def checkpoint_checksum(payload: Dict) -> str:
    """SHA-256 over the canonical mutable sections of a checkpoint."""
    body = {
        "kind": payload.get("kind"),
        "identity": payload.get("identity"),
        "progress": payload.get("progress"),
        "state": payload.get("state"),
    }
    return hashlib.sha256(_canonical(body)).hexdigest()


def build_checkpoint(
    kind: str,
    identity: Dict,
    state: Dict,
    completed: int,
    total: int,
) -> Dict:
    """Assemble (and checksum) one checkpoint payload."""
    payload = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "kind": kind,
        "identity": dict(identity),
        "progress": {"completed": int(completed), "total": int(total)},
        "state": dict(state),
    }
    payload["checksum"] = checkpoint_checksum(payload)
    return payload


def _is_int(value) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def validate_checkpoint(payload) -> List[str]:
    """All the ways ``payload`` violates :data:`CHECKPOINT_SCHEMA`.

    Returns an empty list for a valid checkpoint; never raises on
    malformed input — lint turns each problem into an R602 finding.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["top level is not an object"]
    for key in CHECKPOINT_SCHEMA["required"]:
        if key not in payload:
            problems.append(f"missing key {key!r}")
    if payload.get("format") != CHECKPOINT_FORMAT:
        problems.append(f"unknown format {payload.get('format')!r}")
    if payload.get("version") != CHECKPOINT_VERSION:
        problems.append(f"unsupported version {payload.get('version')!r}")
    if "kind" in payload and payload.get("kind") not in KINDS:
        problems.append(f"unknown kind {payload.get('kind')!r}")
    for section in ("identity", "state"):
        if section in payload and not isinstance(payload.get(section), dict):
            problems.append(f"{section!r} is not an object")
    progress = payload.get("progress")
    if progress is not None:
        if not isinstance(progress, dict):
            problems.append("'progress' is not an object")
        else:
            for key in ("completed", "total"):
                if not _is_int(progress.get(key)) or progress.get(key) < 0:
                    problems.append(
                        f"progress[{key!r}] is not a non-negative integer"
                    )
            if (
                _is_int(progress.get("completed"))
                and _is_int(progress.get("total"))
                and progress["completed"] > progress["total"]
            ):
                problems.append("progress 'completed' exceeds 'total'")
    checksum = payload.get("checksum")
    if checksum is not None:
        if not isinstance(checksum, str):
            problems.append("'checksum' is not a string")
        elif not problems and checksum != checkpoint_checksum(payload):
            problems.append("payload checksum mismatch")
    return problems


def write_checkpoint(path: str, payload: Dict) -> str:
    """Validate and atomically write a checkpoint; returns the path.

    An invalid payload is a programming error (``ValueError``), never
    written.  The temp file lands in the target directory so the final
    ``os.replace`` is atomic on every POSIX filesystem.
    """
    problems = validate_checkpoint(payload)
    if problems:
        raise ValueError(
            "refusing to write an invalid checkpoint: " + "; ".join(problems)
        )
    chaos.trip("checkpoint.write")
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=TMP_PREFIX, suffix=".json"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise
    from .. import obs

    obs.get_recorder().count("checkpoint.writes")
    return os.fspath(path)


def load_checkpoint(
    path: str,
    kind: Optional[str] = None,
    identity: Optional[Dict] = None,
) -> Dict:
    """Read, validate and identity-check one checkpoint file.

    Raises :class:`CheckpointCorruptError` when the file cannot be
    trusted and :class:`CheckpointMismatchError` when it describes a
    different campaign than the caller's ``kind`` / ``identity``.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise CheckpointCorruptError(
            f"cannot read checkpoint {path}: {exc}"
        ) from exc
    problems = validate_checkpoint(payload)
    if problems:
        raise CheckpointCorruptError(
            f"checkpoint {path} is invalid: " + "; ".join(problems)
        )
    if kind is not None and payload["kind"] != kind:
        raise CheckpointMismatchError(
            f"checkpoint {path} is a {payload['kind']!r} checkpoint, "
            f"expected {kind!r}"
        )
    if identity is not None and payload["identity"] != identity:
        differing = sorted(
            key
            for key in set(payload["identity"]) | set(identity)
            if payload["identity"].get(key) != identity.get(key)
        )
        raise CheckpointMismatchError(
            f"checkpoint {path} belongs to a different run "
            f"(identity differs at: {', '.join(differing)})"
        )
    from .. import obs

    obs.get_recorder().count("checkpoint.loads")
    return payload
