"""Retry/timeout/backoff policies for the chunked executor.

A :class:`RetryPolicy` tells :func:`repro.core.parallel.map_chunked` how
to treat failing chunks: how many re-attempts each chunk gets, how long
to back off between them, what the per-chunk deadline is on pooled
backends, and whether a dying backend may degrade down the ladder
(process -> thread -> serial).

Backoff is **deterministic**: delays are a pure function of the policy
and the (chunk id, attempt) pair.  Jitter — needed so a thundering herd
of retried chunks does not re-synchronize — comes from a SHA-256 hash of
``(seed, chunk, attempt)``, not from wall clock or a shared RNG stream,
so a retried run schedules exactly the same waits as the first one and
no simulation RNG stream is ever touched.  Retried chunks themselves are
bit-identical by construction: the worker body re-derives its generators
from the same SeedSequence spawn keys embedded in the payload, so a
retry is simply the same pure function applied again.

Configuration resolves, in priority order: explicit :class:`RetryPolicy`
> ``REPRO_RETRY_*`` environment variables > defaults.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Tuple, Type, Union

from .errors import TransientError

__all__ = [
    "RetryPolicy",
    "resolve_retry",
    "deterministic_jitter",
    "fallback_rungs",
    "without_sleep",
    "DEGRADATION_LADDER",
]

#: Environment knobs (also set by CLI flags in ``repro.__main__``).
ENV_MAX_RETRIES = "REPRO_RETRY_MAX"
ENV_TIMEOUT = "REPRO_RETRY_TIMEOUT"
ENV_BACKOFF = "REPRO_RETRY_BACKOFF"
ENV_NO_DEGRADE = "REPRO_RETRY_NO_DEGRADE"

#: Graceful-degradation ladder per starting backend: when a pool breaks
#: or hangs past recovery, incomplete chunks re-run on the next rung.
#: Every ladder ends at ``serial``, which cannot break.
DEGRADATION_LADDER = {
    "serial": ("serial",),
    "process": ("process", "thread", "serial"),
    "futures": ("futures", "thread", "serial"),
    "thread": ("thread", "serial"),
}


def fallback_rungs(backend: str) -> Tuple[str, ...]:
    """The rungs *below* ``backend`` on the degradation ladder.

    ``process`` -> ``("thread", "serial")``, ``serial`` -> ``()`` (the
    bottom rung cannot break).  The service supervisor walks these when a
    batch loses its compute plane mid-flight, re-running only the
    affected request group one rung down.
    """
    return DEGRADATION_LADDER.get(backend, ("serial",))[1:]


def deterministic_jitter(seed: int, chunk: int, attempt: int) -> float:
    """A reproducible uniform draw in ``[0, 1)`` for backoff jitter.

    Hash-derived so it is independent of every simulation RNG stream and
    identical across processes, platforms and reruns.
    """
    digest = hashlib.sha256(
        f"repro-backoff:{seed}:{chunk}:{attempt}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass(frozen=True)
class RetryPolicy:
    """How the executor reacts to failing, hanging or dying chunks.

    ``max_retries`` counts *re*-attempts per chunk beyond the first try.
    ``chunk_timeout`` (seconds) is the per-chunk deadline, enforced on
    pooled backends (serial execution cannot be preempted; deadlines are
    a no-op there).  ``degrade=False`` turns the fallback ladder off, so
    a broken pool raises instead of re-running chunks on the next rung.
    ``retryable`` lists the exception types worth retrying; everything
    else propagates immediately.  ``sleep`` is injectable so tests can
    assert the computed schedule without actually waiting.
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    chunk_timeout: Optional[float] = None
    degrade: bool = True
    retryable: Tuple[Type[BaseException], ...] = (TransientError, OSError)
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be a fraction in [0, 1]")
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ValueError("chunk_timeout must be positive")

    def is_retryable(self, error: BaseException) -> bool:
        return isinstance(error, self.retryable)

    def backoff_delay(self, chunk: int, attempt: int) -> float:
        """The wait before re-attempt ``attempt`` (1-based) of ``chunk``.

        Bounded exponential with deterministic, symmetric jitter:
        ``base * factor**(attempt-1)`` capped at ``backoff_max``, then
        scaled by ``1 + jitter * (2u - 1)`` with ``u`` hash-derived.
        """
        delay = min(
            self.backoff_base * self.backoff_factor ** max(attempt - 1, 0),
            self.backoff_max,
        )
        if self.jitter:
            unit = deterministic_jitter(self.seed, chunk, attempt)
            delay *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return delay

    def wait(self, chunk: int, attempt: int) -> float:
        """Sleep the backoff delay; returns the seconds slept."""
        delay = self.backoff_delay(chunk, attempt)
        if delay > 0:
            self.sleep(delay)
        return delay

    def ladder(self, backend: str) -> Tuple[str, ...]:
        """The fallback rungs for ``backend`` under this policy."""
        rungs = DEGRADATION_LADDER.get(backend, ("serial",))
        return rungs if self.degrade else rungs[:1]


def resolve_retry(
    policy: Optional[Union[RetryPolicy, int]] = None,
) -> RetryPolicy:
    """Normalize a caller-supplied retry policy.

    ``None`` falls back to the ``REPRO_RETRY_*`` environment (defaults
    when unset); a bare integer is shorthand for ``max_retries``.
    """
    if isinstance(policy, RetryPolicy):
        return policy
    if isinstance(policy, int) and not isinstance(policy, bool):
        return RetryPolicy(max_retries=policy)
    kwargs = {}
    retries = os.environ.get(ENV_MAX_RETRIES, "").strip()
    if retries:
        kwargs["max_retries"] = int(retries)
    timeout = os.environ.get(ENV_TIMEOUT, "").strip()
    if timeout:
        kwargs["chunk_timeout"] = float(timeout)
    backoff = os.environ.get(ENV_BACKOFF, "").strip()
    if backoff:
        kwargs["backoff_base"] = float(backoff)
    if os.environ.get(ENV_NO_DEGRADE, "").strip():
        kwargs["degrade"] = False
    return RetryPolicy(**kwargs)


def without_sleep(policy: RetryPolicy) -> RetryPolicy:
    """A copy of ``policy`` that never actually waits (test helper)."""
    return replace(policy, sleep=lambda _delay: None)
