"""Deterministic fault injection: the chaos harness behind the chaos suite.

Production Monte-Carlo campaigns die in exactly four ways — a worker
process is killed, a chunk hangs, a dependency throws transiently, a
cache/checkpoint file rots on disk.  This module makes each of those
failures *reproducible on demand* so the test suite can assert that the
execution stack either recovers or fails with a typed
:class:`~repro.resilience.errors.ResilienceError`.

A :class:`ChaosPlan` is a list of :class:`ChaosEvent` triggers.  Library
code calls :func:`trip` at named injection points (``parallel.chunk``,
``evaluate.trial``, ``cache.load``, ``cache.store``,
``checkpoint.write``); when no plan is installed the call is a
few-nanosecond no-op, so the hooks are safe to leave in hot paths.
Events match on the point name plus, optionally, the item index (chunk
start / trial number) and the attempt number — gating an event on
``attempts=(0,)`` is how a test injects a failure that *recovery must
survive*: the first attempt dies, the retry passes.

Plans are picklable and travel to process-pool workers through the pool
initializer (:mod:`repro.core.parallel`), so a ``kill`` event really
does take down a live worker process.  ``kill`` refuses to fire in the
main process — an injection harness must never take down the test
runner itself.  The one exception is the ``service.*`` points, which are
only ever tripped in the serving process: there ``kill`` raises
:class:`~repro.resilience.errors.WorkerPoolBrokenError`, simulating the
compute plane dying under a batch so the service supervisor's
degradation ladder can be exercised without sacrificing a real pool.

Plans can also come from the ``REPRO_CHAOS`` environment variable (see
:meth:`ChaosPlan.parse`), which is how CI interrupts a real
``python -m repro table1`` run mid-campaign without patching anything.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from .errors import ChaosError, TransientChaosError, WorkerPoolBrokenError

__all__ = [
    "ChaosEvent",
    "ChaosPlan",
    "async_trip",
    "chaos_active",
    "corrupt_file",
    "get_plan",
    "install",
    "trip",
    "uninstall",
]

ENV_CHAOS = "REPRO_CHAOS"

#: Injection points the library exposes (documented contract; the chaos
#: suite asserts each one both fires and recovers).
POINTS = (
    "parallel.chunk",
    "evaluate.trial",
    "cache.load",
    "cache.store",
    "checkpoint.write",
    "service.batch",
    "service.store_load",
    "service.connection",
)

#: Points that fire in the serving process itself; ``kill`` here means
#: "the compute plane died under this operation", not "kill this process".
_SERVICE_PREFIX = "service."

ACTIONS = ("raise", "transient", "kill", "hang", "slow")


@dataclass(frozen=True)
class ChaosEvent:
    """One trigger: *at this point, under these conditions, do this*.

    ``index=None`` matches every item; ``attempts=None`` matches every
    attempt; ``times=None`` never disarms.  ``param`` is the sleep
    duration (seconds) for ``hang``/``slow``.
    """

    point: str
    action: str
    index: Optional[int] = None
    attempts: Optional[Tuple[int, ...]] = None
    times: Optional[int] = 1
    param: float = 0.0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown chaos action {self.action!r}; expected one of {ACTIONS}"
            )
        if self.times is not None and self.times < 1:
            raise ValueError(
                "times must be None (never disarm) or >= 1; "
                "an event that can fire zero times is a misconfiguration"
            )

    def matches(self, point: str, index: Optional[int], attempt: int) -> bool:
        if self.point != point:
            return False
        if self.index is not None and index != self.index:
            return False
        if self.attempts is not None and attempt not in self.attempts:
            return False
        return True


class ChaosPlan:
    """An ordered set of events plus per-process firing counts.

    The counts live on the plan instance (not the frozen events), so a
    plan shipped to a worker process starts with a fresh count there —
    which is exactly right: each worker is its own blast radius.
    """

    def __init__(self, events: Tuple[ChaosEvent, ...]) -> None:
        self.events: Tuple[ChaosEvent, ...] = tuple(events)
        self.fired: Dict[int, int] = {}

    def __reduce__(self):
        # Pickle only the events; firing counts are per-process state.
        return (ChaosPlan, (self.events,))

    def select(
        self, point: str, index: Optional[int], attempt: int
    ) -> Iterator[ChaosEvent]:
        for slot, event in enumerate(self.events):
            if not event.matches(point, index, attempt):
                continue
            if event.times is not None and self.fired.get(slot, 0) >= event.times:
                continue
            self.fired[slot] = self.fired.get(slot, 0) + 1
            yield event

    @classmethod
    def parse(cls, spec: str) -> "ChaosPlan":
        """Build a plan from a ``REPRO_CHAOS`` spec string.

        Events are ``;``-separated; each is ``point:action`` optionally
        followed by ``:key=value`` fields (``index``, ``attempts`` as a
        ``/``-separated list, ``times`` where ``0`` means unlimited,
        ``param`` in seconds)::

            REPRO_CHAOS="evaluate.trial:transient:index=2"
            REPRO_CHAOS="parallel.chunk:kill:attempts=0;cache.load:transient"
        """
        events: List[ChaosEvent] = []
        for entry in spec.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            fields = entry.split(":")
            if len(fields) < 2:
                raise ValueError(
                    f"chaos event {entry!r} must be point:action[:key=value...]"
                )
            kwargs: Dict = {"point": fields[0], "action": fields[1]}
            for option in fields[2:]:
                key, _, value = option.partition("=")
                if key == "index":
                    kwargs["index"] = int(value)
                elif key == "attempts":
                    kwargs["attempts"] = tuple(
                        int(item) for item in value.split("/")
                    )
                elif key == "times":
                    kwargs["times"] = None if int(value) == 0 else int(value)
                elif key == "param":
                    kwargs["param"] = float(value)
                else:
                    raise ValueError(f"unknown chaos option {key!r} in {entry!r}")
            events.append(ChaosEvent(**kwargs))
        return cls(tuple(events))


# ----------------------------------------------------------------------
# the process-wide plan slot
# ----------------------------------------------------------------------
_PLAN: Optional[ChaosPlan] = None
#: Parsed-environment cache: (spec string, parsed plan).
_ENV_CACHE: Tuple[Optional[str], Optional[ChaosPlan]] = (None, None)


def install(plan: ChaosPlan) -> ChaosPlan:
    """Install ``plan`` as the process-wide chaos plan."""
    global _PLAN
    _PLAN = plan
    return plan


def uninstall() -> None:
    global _PLAN
    _PLAN = None


def get_plan() -> Optional[ChaosPlan]:
    """The active plan: installed > ``REPRO_CHAOS`` environment > none."""
    if _PLAN is not None:
        return _PLAN
    global _ENV_CACHE
    spec = os.environ.get(ENV_CHAOS) or None
    if spec != _ENV_CACHE[0]:
        _ENV_CACHE = (spec, ChaosPlan.parse(spec) if spec else None)
    return _ENV_CACHE[1]


class chaos_active:
    """``with chaos_active(plan): ...`` — install, then always uninstall."""

    def __init__(self, plan: ChaosPlan) -> None:
        self.plan = plan

    def __enter__(self) -> ChaosPlan:
        return install(self.plan)

    def __exit__(self, exc_type, exc, tb) -> bool:
        uninstall()
        return False


def _in_worker_process() -> bool:
    import multiprocessing

    return multiprocessing.parent_process() is not None


def _armed(
    point: str, index: Optional[int], attempt: int
) -> List[ChaosEvent]:
    """Select (and consume the firing budget of) matching events."""
    plan = get_plan()
    if plan is None:
        return []
    return list(plan.select(point, index, attempt))


def _raise_for(
    event: ChaosEvent, point: str, index: Optional[int], attempt: int
) -> None:
    """Raise (or kill) for one non-sleeping armed event."""
    if event.action == "transient":
        raise TransientChaosError(
            f"injected transient failure at {point} "
            f"(index={index}, attempt={attempt})"
        )
    if event.action == "raise":
        raise ChaosError(
            f"injected failure at {point} (index={index}, attempt={attempt})"
        )
    if event.action == "kill":
        if _in_worker_process():
            os._exit(13)
        if point.startswith(_SERVICE_PREFIX):
            raise WorkerPoolBrokenError(
                f"injected worker death at {point} "
                f"(index={index}, attempt={attempt})"
            )
        raise ChaosError(
            f"chaos kill at {point} refused: not in a worker process"
        )


def trip(point: str, index: Optional[int] = None, attempt: int = 0) -> None:
    """Fire any armed events at an injection point (no-op without a plan)."""
    for event in _armed(point, index, attempt):
        from .. import obs

        obs.get_recorder().count(f"chaos.{event.action}")
        if event.action in ("hang", "slow"):
            time.sleep(event.param)
        else:
            _raise_for(event, point, index, attempt)


async def async_trip(
    point: str, index: Optional[int] = None, attempt: int = 0
) -> None:
    """:func:`trip` for coroutine call sites (the asyncio serving plane).

    ``hang``/``slow`` await :func:`asyncio.sleep` instead of blocking the
    event loop — a blocked loop would stall the very deadline machinery
    (slow-client write timeouts) these events exist to exercise.
    """
    import asyncio

    for event in _armed(point, index, attempt):
        from .. import obs

        obs.get_recorder().count(f"chaos.{event.action}")
        if event.action in ("hang", "slow"):
            await asyncio.sleep(event.param)
        else:
            _raise_for(event, point, index, attempt)


# ----------------------------------------------------------------------
# on-disk corruption
# ----------------------------------------------------------------------
def corrupt_file(path: str, mode: str = "truncate") -> str:
    """Deterministically damage a file (cache entry, checkpoint, ...).

    ``truncate`` halves the file, ``garbage`` overwrites its head with a
    fixed byte pattern, ``delete`` removes it.  Returns the path.
    """
    if mode == "delete":
        os.remove(path)
        return path
    size = os.path.getsize(path)
    if mode == "truncate":
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
    elif mode == "garbage":
        with open(path, "r+b") as handle:
            handle.write(b"\xde\xad\xbe\xef" * max(1, min(size, 256) // 4))
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    return path
