"""Typed failure taxonomy of the resilience layer.

Every failure the execution stack can surface maps onto one class here,
so callers (and the CLI exit-code policy) dispatch on *types*, never on
string matching:

* :class:`TransientError` — the retryable family; raising one inside a
  worker chunk tells the executor "try again", and chaos injection uses
  the :class:`TransientChaosError` subclass,
* :class:`RetryExhaustedError` / :class:`ChunkTimeoutError` /
  :class:`WorkerPoolBrokenError` — the executor's own verdicts once the
  retry budget, a chunk deadline, or the whole worker pool is gone,
* :class:`CheckpointError` family — checkpoint files that cannot be
  trusted (:class:`CheckpointCorruptError`) or that belong to a
  different run (:class:`CheckpointMismatchError`, a *user* error: the
  resume flags point at the wrong campaign).

The CLI maps these to exit codes (see ``repro.__main__``): mismatches
are usage errors (2), every other ``ResilienceError`` is a transient /
recoverable failure (3), anything untyped is an internal error (1).
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ResilienceError",
    "TransientError",
    "TransientChaosError",
    "ChaosError",
    "RetryExhaustedError",
    "ChunkTimeoutError",
    "WorkerPoolBrokenError",
    "CheckpointError",
    "CheckpointCorruptError",
    "CheckpointMismatchError",
]


class ResilienceError(RuntimeError):
    """Base of every typed failure raised by :mod:`repro.resilience`."""


class TransientError(ResilienceError):
    """A failure worth retrying (the default retryable marker family)."""


class ChaosError(ResilienceError):
    """A deliberately injected, *non*-retryable failure (test harness)."""


class TransientChaosError(TransientError):
    """A deliberately injected retryable failure (test harness)."""


class RetryExhaustedError(ResilienceError):
    """A chunk kept failing after the whole retry budget was spent."""

    def __init__(
        self, message: str, chunk: Optional[int] = None, attempts: int = 0
    ) -> None:
        super().__init__(message)
        self.chunk = chunk
        self.attempts = attempts


class ChunkTimeoutError(ResilienceError):
    """A chunk overran its deadline and could not be recovered."""

    def __init__(
        self,
        message: str,
        chunk: Optional[int] = None,
        timeout_s: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.chunk = chunk
        self.timeout_s = timeout_s


class WorkerPoolBrokenError(ResilienceError):
    """The worker pool died (e.g. a killed process) and no fallback ran."""


class CheckpointError(ResilienceError):
    """Base of the checkpoint/resume failure family."""


class CheckpointCorruptError(CheckpointError):
    """Checkpoint file is unreadable, schema-invalid, or fails its checksum."""


class CheckpointMismatchError(CheckpointError):
    """Checkpoint belongs to a different run (identity disagreement).

    Resuming with different circuit/seed/config than the checkpoint was
    written under would silently splice two unrelated campaigns; this is
    surfaced as a *user* error (CLI exit code 2), never auto-overwritten.
    """
