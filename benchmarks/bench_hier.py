"""Wall-clock benchmark of hierarchical block dictionary construction.

Builds a full-coverage fault dictionary (broad random two-vector
patterns, suspects strided across *every* edge of the circuit — the
paper's dictionary scenario, not a single pruned diagnosis) under the
four arms — {serial, process pool} x {flat, hierarchical} — asserts
every arm bit-identical to the serial flat reference *before* recording
any number, and emits ``BENCH_hier.json`` (the ``BENCH_*.json`` schema).

Hierarchical arms run against a **warm extraction store** (the
``extract once`` steady state: the block models are mmap-loaded, not
rebuilt), with the full-dictionary result store suppressed on both
sides so flat and hier time exactly the same work.  The cold extraction
cost is measured separately and recorded per circuit
(``extract_cold_seconds``), and the ``end_to_end`` section times fully
cold hier builds (partition + extract + replay) against flat on the two
largest profiles — s15850 and the s38417-profile circuit from
:func:`repro.circuits.s38417_profile_config`.

Two gates:

* **parity** (unconditional): the serial hierarchical build must stay
  within ``PARITY_LIMIT`` of the serial flat build on every circuit —
  block replay is supposed to be free, and this catches it regressing
  into "slower but identical";
* **beats-serial** (multi-core hosts only, like ``bench_parallel``):
  on ``cpu_count >= 2`` the process+hier arm must beat serial flat
  (speedup > 1.0) on the largest benchmarked circuit.  Single-core
  hosts (the emitted ``cpu_count`` field says which this was) report
  the ratio without gating — two workers sharing one core measure
  contention, not the engine.

Usage: ``PYTHONPATH=src python benchmarks/bench_hier.py [--quick]``
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

import numpy as np

from repro import obs
from repro.atpg import random_pattern_pairs
from repro.circuits import (
    generate_circuit,
    load_benchmark,
    s38417_profile_config,
)
from repro.core import (
    DictionaryCache,
    ParallelConfig,
    build_dictionary,
    chunk_indices,
)
from repro.defects import SingleDefectModel
from repro.hier import block_chunks, extract_block_models, partition_circuit
from repro.timing import (
    CircuitTiming,
    SampleSpace,
    diagnosis_clock,
    simulate_pattern_set,
)

#: Circuits ordered small to large; the last entry is the headline number.
CIRCUITS = ("s1196", "s5378", "s15850")
QUICK_CIRCUITS = ("s1196",)
HEADLINE_WORKERS = 2
#: Unconditional gate: serial hier build must stay within this factor of
#: the serial flat build.
PARITY_LIMIT = 1.35
#: Scale of the s38417 profile used for the end-to-end arm — the full
#: 23k-gate preset is exercised by its (slow-marked) smoke test; end to
#: end timing only needs "much larger than s15850".
S38417_E2E_SCALE = 0.3


class _ExtractionOnlyCache(DictionaryCache):
    """A cache whose directory feeds the hier extraction store only.

    ``store`` is a no-op so the timed arms never pay the full-dictionary
    ``np.savez`` (which the cache-less flat arms do not pay either) and
    repeats never turn into warm-cache hits; the ``hier/`` subdirectory
    still serves the persisted block models, which is the steady state
    the hierarchical engine is designed around.
    """

    def store(self, key, m_crt, signatures):
        return None


def _build_case(name: str, n_samples: int, n_patterns: int, seed: int,
                n_suspects: int = 500, circuit=None):
    """A full-coverage dictionary build: broad patterns, strided suspects."""
    if circuit is None:
        circuit = load_benchmark(name, seed=seed)
    timing = CircuitTiming(circuit, SampleSpace(n_samples=n_samples, seed=seed))
    model = SingleDefectModel(timing)
    patterns = random_pattern_pairs(circuit, n_patterns, seed=seed + 1)
    sims = simulate_pattern_set(timing, list(patterns))
    clk = diagnosis_clock(
        timing, list(patterns), 0.85,
        simulations=sims, targets=patterns.target_observations(),
    )
    edges = timing.circuit.edges
    suspects = edges[::max(1, len(edges) // n_suspects)]
    sizes = model.dictionary_size_variable().samples
    return timing, patterns, clk, suspects, sizes, sims, model


def _identical(a, b) -> bool:
    return np.array_equal(a.m_crt, b.m_crt) and all(
        np.array_equal(a.signatures[e], b.signatures[e]) for e in a.suspects
    )


def bench_circuit(name: str, n_samples: int, n_patterns: int, repeats: int):
    timing, patterns, clk, suspects, sizes, sims, model = _build_case(
        name, n_samples=n_samples, n_patterns=n_patterns, seed=0
    )
    work_per_item = len(patterns) * n_samples
    graph = partition_circuit(timing.circuit)
    base = dict(
        circuit=name,
        n_edges=len(timing.circuit.edges),
        n_suspects=len(suspects),
        n_patterns=len(patterns),
        n_samples=n_samples,
        n_blocks=graph.n_blocks,
        flat_chunks=len(chunk_indices(
            len(suspects), None, HEADLINE_WORKERS, work_per_item=work_per_item
        )),
        hier_chunks=len(block_chunks(graph, suspects, work_per_item)),
    )
    runs = []

    with tempfile.TemporaryDirectory() as tmp:
        cache = _ExtractionOnlyCache(tmp)
        # Cold extraction, measured once; the timed hier arms then run
        # against the warm store, which is the engine's steady state.
        started = time.perf_counter()
        extract_block_models(timing, list(patterns), sims, graph,
                             directory=tmp)
        extract_cold = time.perf_counter() - started
        base["extract_cold_seconds"] = round(extract_cold, 6)

        def timed(label, backend, hier, workers, **kwargs):
            best = float("inf")
            result = None
            for _repeat in range(repeats):
                started = time.perf_counter()
                result = build_dictionary(
                    timing, patterns, clk, suspects, sizes,
                    base_simulations=sims, hier=hier,
                    cache=cache if hier else None, **kwargs,
                )
                best = min(best, time.perf_counter() - started)
            runs.append(
                dict(base, strategy=label, backend=backend, hier=hier,
                     workers=workers, seconds=round(best, 6))
            )
            return result

        pool = ParallelConfig(backend="process", n_workers=HEADLINE_WORKERS)
        reference = timed("serial-flat", "serial", False, 1)
        for label, backend, hier, kwargs in (
            ("serial-hier", "serial", True, {}),
            ("process-flat", "process", False, {"parallel": pool}),
            ("process-hier", "process", True, {"parallel": pool}),
        ):
            candidate = timed(
                label, backend, hier,
                HEADLINE_WORKERS if kwargs else 1, **kwargs,
            )
            assert _identical(reference, candidate), \
                f"{label} diverged on {name}"

        # Replay containment accounting of one instrumented hier build.
        recorder = obs.install()
        try:
            build_dictionary(
                timing, patterns, clk, suspects, sizes,
                base_simulations=sims, hier=True, cache=cache,
            )
        finally:
            obs.disable()
        counters = recorder.snapshot()["counters"]
        for run in runs:
            run["contained"] = int(counters.get("hier.block.contained", 0))
            run["fallback"] = int(counters.get("hier.block.fallback", 0))

    # Sampled estimators: hierarchical sharding must not move one draw.
    dist = model.dictionary_size_distribution()
    pool = ParallelConfig(backend="process", n_workers=HEADLINE_WORKERS)
    for mode in ("is", "adaptive"):
        flat = build_dictionary(
            timing, patterns, clk, suspects, sizes, base_simulations=sims,
            sampler=mode, size_distribution=dist,
        )
        hier = build_dictionary(
            timing, patterns, clk, suspects, sizes, base_simulations=sims,
            sampler=mode, size_distribution=dist, hier=True, parallel=pool,
        )
        assert _identical(flat, hier), f"{mode} sampler diverged on {name}"

    serial_seconds = runs[0]["seconds"]
    for run in runs:
        run["speedup"] = round(serial_seconds / run["seconds"], 3)
    return runs


def bench_end_to_end(name: str, n_samples: int, n_patterns: int,
                     circuit=None):
    """Fully cold flat-vs-hier build (partition + extraction included)."""
    timing, patterns, clk, suspects, sizes, sims, _model = _build_case(
        name, n_samples=n_samples, n_patterns=n_patterns, seed=0,
        n_suspects=300, circuit=circuit,
    )
    record = dict(
        circuit=name,
        n_gates=len(timing.circuit.topological_order)
        - len(timing.circuit.inputs),
        n_suspects=len(suspects),
        n_patterns=len(patterns),
        n_samples=n_samples,
    )
    # min-of-2 for the flat and warm arms so one-time per-process costs
    # (kernel compilation, import warmup) don't masquerade as engine
    # deltas; the cold arm is genuinely once-per-model, timed once after
    # the kernel is warm so it isolates partition + extraction.
    flat_best = float("inf")
    for _repeat in range(2):
        started = time.perf_counter()
        flat = build_dictionary(
            timing, patterns, clk, suspects, sizes, base_simulations=sims
        )
        flat_best = min(flat_best, time.perf_counter() - started)
    record["flat_seconds"] = round(flat_best, 6)
    with tempfile.TemporaryDirectory() as tmp:
        cache = _ExtractionOnlyCache(tmp)
        started = time.perf_counter()
        hier = build_dictionary(
            timing, patterns, clk, suspects, sizes, base_simulations=sims,
            hier=True, cache=cache,
        )
        record["hier_cold_seconds"] = round(
            time.perf_counter() - started, 6
        )
        warm_best = float("inf")
        for _repeat in range(2):
            started = time.perf_counter()
            hier_warm = build_dictionary(
                timing, patterns, clk, suspects, sizes,
                base_simulations=sims, hier=True, cache=cache,
            )
            warm_best = min(warm_best, time.perf_counter() - started)
        record["hier_warm_seconds"] = round(warm_best, 6)
    assert _identical(flat, hier), f"end-to-end hier diverged on {name}"
    assert _identical(flat, hier_warm), f"warm hier diverged on {name}"
    record["cold_ratio"] = round(
        record["flat_seconds"] / record["hier_cold_seconds"], 3
    )
    record["warm_ratio"] = round(
        record["flat_seconds"] / record["hier_warm_seconds"], 3
    )
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smallest circuit only, fewer samples, no "
                        "end-to-end arm")
    parser.add_argument("--samples", type=int, default=300)
    parser.add_argument("--patterns", type=int, default=16)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--output", default=os.path.join(os.path.dirname(__file__) or ".",
                                         "BENCH_hier.json"),
    )
    args = parser.parse_args(argv)

    circuits = QUICK_CIRCUITS if args.quick else CIRCUITS
    samples = min(args.samples, 150) if args.quick else args.samples
    runs = []
    for name in circuits:
        print(f"benchmarking {name} ...", flush=True)
        circuit_runs = bench_circuit(
            name, n_samples=samples, n_patterns=args.patterns,
            repeats=args.repeats,
        )
        runs.extend(circuit_runs)
        for run in circuit_runs:
            print(
                f"  {run['strategy']:>14s}: {run['seconds']*1e3:9.1f} ms  "
                f"(x{run['speedup']:.2f}, chunks flat={run['flat_chunks']} "
                f"hier={run['hier_chunks']}, blocks={run['n_blocks']})"
            )

    end_to_end = []
    if not args.quick:
        for name, circuit in (
            ("s15850", None),
            ("s38417-profile",
             generate_circuit(s38417_profile_config(scale=S38417_E2E_SCALE))),
        ):
            print(f"end-to-end {name} ...", flush=True)
            record = bench_end_to_end(
                name, n_samples=min(samples, 120),
                n_patterns=args.patterns, circuit=circuit,
            )
            end_to_end.append(record)
            print(
                f"  flat {record['flat_seconds']*1e3:9.1f} ms   "
                f"hier cold {record['hier_cold_seconds']*1e3:9.1f} ms "
                f"(x{record['cold_ratio']:.2f})   "
                f"warm {record['hier_warm_seconds']*1e3:9.1f} ms "
                f"(x{record['warm_ratio']:.2f}, gates={record['n_gates']})"
            )

    largest = circuits[-1]
    headline = None
    for run in runs:
        if run["circuit"] == largest and run["strategy"] == "process-hier":
            headline = {
                "circuit": largest,
                "serial_flat_seconds": next(
                    r["seconds"] for r in runs
                    if r["circuit"] == largest
                    and r["strategy"] == "serial-flat"
                ),
                "process_hier_seconds": run["seconds"],
                "speedup": run["speedup"],
                "workers": HEADLINE_WORKERS,
                "gated": (os.cpu_count() or 1) >= 2,
            }

    report = {
        "bench": "hier_dictionary",
        "schema_version": 1,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "config": {
            "samples": samples,
            "patterns": args.patterns,
            "repeats": args.repeats,
            "circuits": list(circuits),
            "headline_workers": HEADLINE_WORKERS,
            "parity_limit": PARITY_LIMIT,
        },
        "runs": runs,
        "end_to_end": end_to_end,
        "headline": headline,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    status = 0
    for name in circuits:
        serial = next(r["seconds"] for r in runs
                      if r["circuit"] == name
                      and r["strategy"] == "serial-flat")
        hier = next(r["seconds"] for r in runs
                    if r["circuit"] == name
                    and r["strategy"] == "serial-hier")
        ratio = hier / serial
        if ratio > PARITY_LIMIT:
            print(f"FAIL: serial hier build {ratio:.2f}x serial flat on "
                  f"{name} (parity limit {PARITY_LIMIT})")
            status = 1
        else:
            print(f"parity on {name}: serial-hier {ratio:.2f}x serial-flat "
                  f"(limit {PARITY_LIMIT}) OK")

    if headline is not None:
        if headline["gated"]:
            if headline["speedup"] <= 1.0:
                print(
                    f"FAIL: process+hier lost to serial flat on {largest} "
                    f"(x{headline['speedup']:.2f})"
                )
                status = 1
            else:
                print(
                    f"headline: process+hier on {largest} beats serial "
                    f"flat x{headline['speedup']:.2f} OK"
                )
        else:
            print(
                f"process+hier on {largest}: x{headline['speedup']:.2f} — "
                f"single-CPU host, the beats-serial gate needs >= 2 cores"
            )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
