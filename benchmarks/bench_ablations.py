"""Benchmark: ablation studies on the design choices DESIGN.md calls out.

A1 error functions, A2 Monte-Carlo sample budget, A3 defect size band,
A4 K sweep with automatic-K heuristics.
"""

from repro.experiments import (
    ablation_defect_size,
    ablation_error_functions,
    ablation_k_sweep,
    ablation_sample_count,
)


def test_ablation_error_functions(benchmark):
    """A1: all six error functions on identical trials."""
    rates = benchmark.pedantic(
        ablation_error_functions,
        kwargs=dict(circuit_name="s1196", n_trials=8, n_samples=150, seed=0),
        rounds=1,
        iterations=1,
    )
    print()
    for name, per_k in rates.items():
        cells = "  ".join(f"K={k}: {100 * rate:3.0f}%" for k, rate in per_k.items())
        print(f"  {name:14s} {cells}")
    # The paper's headline ordering: the explicit error function does not
    # lose to the noisy-OR Method I.  (Method III's total collapse in the
    # paper is an artifact of matching raw signatures with a large clk; our
    # tight-clock regime matches on E_crt = M + S, where the product form
    # degrades gracefully instead — see repro.core.diagnosis docstring.)
    largest_k = max(next(iter(rates.values())))
    assert rates["alg_rev"][largest_k] >= rates["method_I"][largest_k] - 1e-9
    for per_k in rates.values():
        assert all(0.0 <= rate <= 1.0 for rate in per_k.values())


def test_ablation_sample_count(benchmark):
    """A2: diagnosis stability vs Monte-Carlo budget."""
    rates = benchmark.pedantic(
        ablation_sample_count,
        kwargs=dict(
            circuit_name="s1196",
            sample_counts=(50, 150, 300),
            n_trials=6,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    for n_samples, rate in rates.items():
        print(f"  n_samples={n_samples:4d}: alg_rev top-5 success {100 * rate:3.0f}%")
    assert all(0.0 <= rate <= 1.0 for rate in rates.values())


def test_ablation_defect_size(benchmark):
    """A3: larger defects are found faster and diagnosed better."""
    results = benchmark.pedantic(
        ablation_defect_size,
        kwargs=dict(
            circuit_name="s1196",
            size_bands=((0.25, 0.5), (0.5, 1.0), (1.5, 2.5)),
            n_trials=6,
            n_samples=150,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    for band, stats in results.items():
        print(
            f"  size band {band}: success {100 * stats['success']:3.0f}%  "
            f"mean instance redraws {stats['mean_instance_redraws']:.1f}"
        )
    bands = list(results)
    # tiny defects need more redraws before a failing chip shows up than
    # big ones (Figure 1's escape argument, quantified)
    assert (
        results[bands[0]]["mean_instance_redraws"]
        >= results[bands[-1]]["mean_instance_redraws"] - 1e-9
    )


def test_ablation_k_sweep(benchmark):
    """A4: success vs K plus the automatic-K heuristics."""
    data = benchmark.pedantic(
        ablation_k_sweep,
        kwargs=dict(
            circuit_name="s1196",
            k_values=(1, 2, 3, 5, 7, 10),
            n_trials=6,
            n_samples=150,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    for k, rate in data["success_vs_k"].items():
        print(f"  K={k:2d}: {100 * rate:3.0f}%")
    print(f"  auto-K (gap):  mean K {data['auto_k_gap']['mean_k']:.1f}, "
          f"success {100 * data['auto_k_gap']['success']:3.0f}%")
    print(f"  auto-K (mass): mean K {data['auto_k_mass']['mean_k']:.1f}, "
          f"success {100 * data['auto_k_mass']['success']:3.0f}%")
    rates = list(data["success_vs_k"].values())
    assert rates == sorted(rates)  # monotone in K
