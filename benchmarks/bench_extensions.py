"""Benchmark: the extension systems (paper future-work directions).

* clock-sweep diagnosis vs single-clock (future work 5: "more information"),
* GA-style fill optimization (Section G's suggestion, after [11]),
* dictionary compaction (future work 4: storage expense),
* analytic vs Monte-Carlo statistical STA (the framework choice).
"""

import numpy as np
import pytest

from repro.atpg import generate_path_tests, optimize_fill
from repro.circuits import load_benchmark
from repro.core import (
    ALG_REV,
    build_dictionary,
    build_sweep_dictionary,
    compaction_report,
    diagnose,
    multi_clock_behavior,
    suspect_edges,
    sweep_clocks,
)
from repro.defects import SingleDefectModel, behavior_matrix
from repro.timing import (
    CircuitTiming,
    SampleSpace,
    analyze,
    analyze_analytic,
    diagnosis_clock,
    simulate_pattern_set,
)


@pytest.fixture(scope="module")
def timing():
    return CircuitTiming(load_benchmark("s1196", seed=0), SampleSpace(250, 0))


@pytest.fixture(scope="module")
def firing_case(timing):
    """A defect whose failures are defect-caused, with patterns and sims."""
    rng = np.random.default_rng(3)
    model = SingleDefectModel(timing)
    for _ in range(30):
        candidate = model.draw(rng)
        patterns, _ = generate_path_tests(
            timing, candidate.edge, n_paths=8, rng_seed=3
        )
        if not len(patterns):
            continue
        sims = simulate_pattern_set(timing, list(patterns))
        clk = diagnosis_clock(
            timing, list(patterns), 0.85,
            simulations=sims, targets=patterns.target_observations(),
        )
        defect = model.defect_at(candidate.edge, size_mean=3.0)
        behavior = behavior_matrix(timing, patterns, clk, defect, 7)
        healthy = behavior_matrix(timing, patterns, clk, None, 7)
        if (behavior & ~healthy).any():
            return model, defect, patterns, sims, clk, behavior
    pytest.skip("no firing case found")


def test_extension_clock_sweep(benchmark, timing, firing_case):
    """3-clock sweep dictionary + diagnosis vs the single-clock answer."""
    model, defect, patterns, sims, clk, behavior = firing_case
    clks = sweep_clocks(
        timing, patterns, quantiles=(0.7, 0.85, 0.95), simulations=sims
    )
    suspects = suspect_edges(sims, behavior)
    size = model.dictionary_size_variable().samples

    def run():
        sweep_behavior = multi_clock_behavior(timing, patterns, clks, defect, 7)
        sweep = build_sweep_dictionary(
            timing, patterns, clks, suspects, size, base_simulations=sims
        )
        return diagnose(sweep, sweep_behavior, ALG_REV)

    sweep_result = benchmark.pedantic(run, rounds=1, iterations=1)
    single = build_dictionary(
        timing, patterns, clk, suspects, size, base_simulations=sims
    )
    single_result = diagnose(single, behavior, ALG_REV)
    print(f"\n  true defect rank: single-clk {single_result.rank_of(defect.edge)}, "
          f"3-clk sweep {sweep_result.rank_of(defect.edge)} "
          f"({len(suspects)} suspects)")
    assert sweep_result.rank_of(defect.edge) is not None


def test_extension_fill_optimization(benchmark, timing):
    """Evolutionary fill: extra defect visibility over quiet fill."""
    import random

    for start in (120, 300, 500):
        _patterns, tests = generate_path_tests(
            timing, timing.circuit.edges[start], n_paths=3, rng_seed=0
        )
        if tests:
            break
    assert tests

    result = benchmark.pedantic(
        optimize_fill,
        args=(timing, tests[0]),
        kwargs=dict(population=8, generations=4, rng=random.Random(0)),
        rounds=1,
        iterations=1,
    )
    print(f"\n  defect visibility {result.baseline_visibility:.3f} -> "
          f"{result.optimized_visibility:.3f} of delta {result.delta:.2f} "
          f"(+{result.improvement:.3f})")
    assert result.improvement >= -1e-9
    assert result.optimized_visibility <= result.delta + 1e-9


def test_extension_dictionary_compaction(benchmark, timing, firing_case):
    """Sparsify+quantize the dictionary; report size vs rank drift."""
    model, defect, patterns, sims, clk, behavior = firing_case
    suspects = suspect_edges(sims, behavior)
    dictionary = build_dictionary(
        timing, patterns, clk, suspects,
        model.dictionary_size_variable().samples, base_simulations=sims,
    )

    report = benchmark.pedantic(
        compaction_report,
        args=(dictionary, behavior),
        kwargs=dict(threshold=0.01),
        rounds=1,
        iterations=1,
    )
    print(f"\n  {report['bytes_dense']} B -> {report['bytes_compact']} B "
          f"({report['compression_ratio']:.1f}x), "
          f"top-10 rank drift {report['max_rank_drift_topk']}, "
          f"top1 preserved: {report['top1_preserved']}")
    assert report["compression_ratio"] > 2.0


def test_extension_analytic_sta(benchmark, timing):
    """Clark-based analytic STA: speed + documented std bias."""
    analytic = benchmark(analyze_analytic, timing)
    mc = analyze(timing).circuit_delay()
    summary = analytic["__circuit__"]
    print(f"\n  circuit delay: MC mean {mc.mean:.2f} std {mc.std:.3f} | "
          f"analytic mean {summary.mean:.2f} std {summary.std:.3f}")
    assert abs(summary.mean - mc.mean) / mc.mean < 0.05
    assert summary.std < mc.std  # the correlation-blindness bias


def test_extension_adaptive_diagnosis(benchmark, timing, firing_case):
    """Adaptive refinement: distinguishing patterns on demand."""
    from repro.core import make_instance_tester, refine_diagnosis

    model, defect, patterns, sims, clk, behavior = firing_case
    suspects = suspect_edges(sims, behavior)
    dictionary = build_dictionary(
        timing, patterns, clk, suspects,
        model.dictionary_size_variable().samples, base_simulations=sims,
    )
    tester = make_instance_tester(timing, defect, 7, clk)
    before = diagnose(dictionary, behavior, ALG_REV).rank_of(defect.edge)

    refined = benchmark.pedantic(
        refine_diagnosis,
        args=(timing, patterns, dictionary, behavior, tester),
        kwargs=dict(truth_edge=defect.edge, max_new_patterns=3),
        rounds=1,
        iterations=1,
    )
    after = refined.result.rank_of(defect.edge)
    print(f"\n  true defect rank {before} -> {after} "
          f"(+{refined.patterns_added} adaptive patterns)")
    assert refined.behavior.shape[1] == behavior.shape[1] + refined.patterns_added


def test_extension_quality_sweep(benchmark, timing, firing_case):
    """Yield loss vs escapes across the capture clock."""
    from repro.defects import clock_quality_sweep

    model, defect, patterns, sims, clk, behavior = firing_case
    quality = benchmark.pedantic(
        clock_quality_sweep,
        args=(timing, patterns, model),
        kwargs=dict(n_defects=8, seed=0, base_simulations=sims),
        rounds=1,
        iterations=1,
    )
    print()
    for c, loss, escape in zip(quality.clks, quality.yield_loss, quality.escape_rate):
        print(f"  clk {c:6.2f}: yield loss {100 * loss:5.1f}%  "
              f"escapes {100 * escape:5.1f}%")
    assert quality.yield_loss == sorted(quality.yield_loss, reverse=True)
    assert quality.escape_rate == sorted(quality.escape_rate)


def test_extension_tester_noise(benchmark):
    """A5: diagnosis robustness to behavior-matrix bit flips."""
    from repro.experiments import ablation_tester_noise

    rates = benchmark.pedantic(
        ablation_tester_noise,
        kwargs=dict(
            circuit_name="s1196",
            flip_probabilities=(0.0, 0.05),
            n_trials=6,
            n_samples=150,
            seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    for p_flip, rate in rates.items():
        print(f"  flip prob {p_flip:.2f}: alg_rev top-5 success {100 * rate:3.0f}%")
    assert all(0.0 <= rate <= 1.0 for rate in rates.values())


def test_extension_resolution_analysis(benchmark, timing, firing_case):
    """Section C in numbers: logic vs timing diagnostic resolution."""
    from repro.core import compare_with_logic_resolution

    model, defect, patterns, sims, clk, behavior = firing_case
    suspects = suspect_edges(sims, behavior)
    dictionary = build_dictionary(
        timing, patterns, clk, suspects,
        model.dictionary_size_variable().samples, base_simulations=sims,
    )
    report = benchmark.pedantic(
        compare_with_logic_resolution,
        args=(dictionary, sims),
        kwargs=dict(tolerance=0.01),
        rounds=1,
        iterations=1,
    )
    print(f"\n  suspects {report['n_suspects']}: "
          f"logic classes {report['logic_classes']} "
          f"(expected class size {report['logic_expected_resolution']:.1f}) | "
          f"timing classes {report['timing_classes']} "
          f"(expected {report['timing_expected_resolution']:.1f})")
    print(f"  logic classes split by timing: "
          f"{report['logic_classes_split_by_timing']}   "
          f"timing-blind suspects: {report['timing_blind_suspects']}")
    assert report["n_suspects"] == len(suspects)


def test_extension_multi_defect(benchmark):
    """A6: two simultaneous defects — single vs greedy-residual diagnosis."""
    from repro.experiments import ablation_multi_defect

    stats = benchmark.pedantic(
        ablation_multi_defect,
        kwargs=dict(n_trials=5, n_samples=150, seed=0),
        rounds=1,
        iterations=1,
    )
    print(f"\n  trials {stats['trials']:.0f}: "
          f"single top-2 any {100 * stats['single_any']:3.0f}% "
          f"both {100 * stats['single_both']:3.0f}% | "
          f"greedy multi any {100 * stats['multi_any']:3.0f}% "
          f"both {100 * stats['multi_both']:3.0f}%")
    assert stats["multi_both"] <= stats["multi_any"] + 1e-9
