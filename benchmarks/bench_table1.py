"""Benchmark: regenerate the paper's Table I (diagnosis accuracy).

One benchmark per Table I circuit.  Each run executes the Section I
protocol (defect injection trials, pattern generation through the fault
site, probabilistic dictionary construction, the three diagnosis methods at
the paper's K values) and prints the measured success rates next to the
published ones.  ``pytest benchmarks/bench_table1.py --benchmark-only``.

Trial counts are reduced (paper: N=20) to keep the suite in benchmark
territory; ``examples/table1_reproduction.py`` runs the full protocol and
EXPERIMENTS.md records its output.
"""

import pytest

from repro.experiments import (
    Table1Result,
    published_rates,
    render_table1,
    run_table1_circuit,
    table1_circuits,
)

#: (trials, samples) used inside the benchmark loop — reduced Section I.
BENCH_TRIALS = 6
BENCH_SAMPLES = 150


@pytest.mark.parametrize("circuit_name", table1_circuits())
def test_table1_circuit(benchmark, circuit_name):
    result = benchmark.pedantic(
        run_table1_circuit,
        args=(circuit_name,),
        kwargs=dict(n_trials=BENCH_TRIALS, n_samples=BENCH_SAMPLES, seed=0),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_table1(Table1Result([result])))

    # sanity: rates are percentages and K-monotone
    for k in result.k_values:
        for method in ("method_I", "method_II", "alg_rev"):
            assert 0.0 <= result.measured(method, k) <= 100.0
    for method in ("method_I", "method_II", "alg_rev"):
        rates = [result.measured(method, k) for k in result.k_values]
        assert rates == sorted(rates)


def test_table1_shape(benchmark):
    """The qualitative Table I claims over a three-circuit subset."""

    def run():
        return Table1Result(
            [
                run_table1_circuit(
                    name, n_trials=BENCH_TRIALS, n_samples=BENCH_SAMPLES, seed=1
                )
                for name in ("s1196", "s1238", "s1488")
            ]
        )

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table1(table))
    checks = table.shape_checks()
    assert checks["success_monotone_in_K"]
