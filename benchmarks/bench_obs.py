"""Overhead benchmark for the observability layer (``repro.obs``).

Two questions, answered with numbers and recorded run over run as
``BENCH_obs.json`` (the ``BENCH_*.json`` schema used by the other
benchmarks):

1. **Disabled cost** — the micro-benchmark times the exact call shapes
   the hot paths contain (span enter/exit, counter bump, enabled guard)
   against the default :class:`~repro.obs.NullRecorder`.  The contract is
   "no-op-cheap": tens of nanoseconds per call, no locks, no clock reads.
2. **Enabled cost** — the macro-benchmark builds a real fault dictionary
   uninstrumented and under a live :class:`~repro.obs.Recorder` and
   reports the relative wall-clock overhead.  Results are asserted
   bit-identical first: an instrumented build that diverged would make
   its timing meaningless (and break the determinism contract).

Usage: ``PYTHONPATH=src python benchmarks/bench_obs.py [--quick]``
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro import obs
from repro.atpg import generate_path_tests
from repro.circuits import load_benchmark
from repro.core import build_dictionary, suspect_edges
from repro.defects import SingleDefectModel, behavior_matrix
from repro.timing import (
    CircuitTiming,
    SampleSpace,
    diagnosis_clock,
    simulate_pattern_set,
)


# ----------------------------------------------------------------------
# micro: per-call cost of the disabled (and enabled) recorder
# ----------------------------------------------------------------------
def _time_per_call(operation, iterations: int) -> float:
    """Best-of-3 nanoseconds per call of ``operation()``."""
    best = float("inf")
    for _repeat in range(3):
        started = time.perf_counter()
        for _ in range(iterations):
            operation()
        best = min(best, time.perf_counter() - started)
    return best / iterations * 1e9


def bench_micro(iterations: int):
    null = obs.NullRecorder()
    live = obs.Recorder()
    samples = np.ones(8)

    def span_null():
        with null.span("x"):
            pass

    def span_live():
        with live.span("x"):
            pass

    cases = [
        ("null.span", span_null),
        ("null.count", lambda: null.count("c")),
        ("null.observe", lambda: null.observe("m", samples)),
        ("enabled-guard", lambda: null.enabled and null.count("c")),
        ("live.span", span_live),
        ("live.count", lambda: live.count("c")),
    ]
    runs = []
    for label, operation in cases:
        ns = _time_per_call(operation, iterations)
        runs.append({"bench": "micro", "operation": label,
                     "ns_per_call": round(ns, 2)})
    return runs


# ----------------------------------------------------------------------
# macro: instrumented vs uninstrumented dictionary build
# ----------------------------------------------------------------------
def _build_case(name: str, n_samples: int, seed: int = 0):
    circuit = load_benchmark(name, seed=seed)
    timing = CircuitTiming(circuit, SampleSpace(n_samples=n_samples, seed=seed))
    model = SingleDefectModel(timing)
    rng = np.random.default_rng(seed)
    for _attempt in range(20):
        defect = model.draw(rng)
        patterns, _ = generate_path_tests(
            timing, defect.edge, n_paths=10, rng_seed=seed
        )
        if len(patterns):
            break
    else:
        raise RuntimeError(f"no testable defect site found on {name}")
    sims = simulate_pattern_set(timing, list(patterns))
    clk = diagnosis_clock(
        timing, list(patterns), 0.85,
        simulations=sims, targets=patterns.target_observations(),
    )
    behavior = behavior_matrix(timing, patterns, clk, defect, 3)
    suspects = suspect_edges(sims, behavior)
    if len(suspects) < 8:
        cone = set(timing.circuit.fanout_cone(defect.edge.sink))
        suspects = [e for e in timing.circuit.edges if e.sink in cone][:200]
    sizes = model.dictionary_size_variable().samples
    return timing, patterns, clk, suspects, sizes, sims


def _identical(a, b) -> bool:
    return np.array_equal(a.m_crt, b.m_crt) and all(
        np.array_equal(a.signatures[e], b.signatures[e]) for e in a.suspects
    )


def bench_macro(name: str, n_samples: int, repeats: int):
    timing, patterns, clk, suspects, sizes, sims = _build_case(name, n_samples)

    def timed(instrumented: bool):
        best = float("inf")
        result = None
        for _repeat in range(repeats):
            recorder = obs.Recorder() if instrumented else obs.NullRecorder()
            with obs.use_recorder(recorder):
                started = time.perf_counter()
                result = build_dictionary(
                    timing, patterns, clk, suspects, sizes,
                    base_simulations=sims,
                )
                best = min(best, time.perf_counter() - started)
        return best, result

    plain_s, plain = timed(instrumented=False)
    live_s, live = timed(instrumented=True)
    assert _identical(plain, live), "instrumented build diverged"
    overhead = (live_s - plain_s) / plain_s if plain_s else 0.0
    return [
        {
            "bench": "macro",
            "circuit": name,
            "n_suspects": len(suspects),
            "n_samples": n_samples,
            "uninstrumented_s": round(plain_s, 6),
            "instrumented_s": round(live_s, 6),
            "overhead_fraction": round(overhead, 4),
            "bit_identical": True,
        }
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer iterations, fewer samples")
    parser.add_argument("--circuit", default="s1196")
    parser.add_argument("--samples", type=int, default=300)
    parser.add_argument("--iterations", type=int, default=200_000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--output", default=os.path.join(os.path.dirname(__file__) or ".",
                                         "BENCH_obs.json"),
    )
    args = parser.parse_args(argv)
    iterations = 20_000 if args.quick else args.iterations
    samples = min(args.samples, 120) if args.quick else args.samples

    runs = bench_micro(iterations)
    for run in runs:
        print(f"  {run['operation']:>14s}: {run['ns_per_call']:9.1f} ns/call")
    macro = bench_macro(args.circuit, samples, args.repeats)
    runs.extend(macro)
    record = macro[0]
    print(
        f"  {args.circuit}: uninstrumented {record['uninstrumented_s']*1e3:.1f} ms, "
        f"instrumented {record['instrumented_s']*1e3:.1f} ms "
        f"(+{record['overhead_fraction']*100:.1f}%)"
    )

    report = {
        "bench": "obs_overhead",
        "schema_version": 1,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "config": {
            "circuit": args.circuit,
            "samples": samples,
            "iterations": iterations,
            "repeats": args.repeats,
        },
        "runs": runs,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    null_span = next(r for r in runs if r.get("operation") == "null.span")
    live_span = next(r for r in runs if r.get("operation") == "live.span")
    ratio = live_span["ns_per_call"] / max(null_span["ns_per_call"], 1e-9)
    print(
        f"disabled span is {ratio:.0f}x cheaper than a live span "
        f"({null_span['ns_per_call']:.0f} ns vs {live_span['ns_per_call']:.0f} ns)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
