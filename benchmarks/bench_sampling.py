"""Sample-efficiency benchmark: adaptive importance sampling vs plain MC.

Builds the probabilistic fault dictionary for strongly-diagnosable
failing trials on ISCAS89-class circuits three ways —

* ``legacy``   — the common-random-numbers path (120 base samples, no
  accuracy statement),
* ``mc``       — the adaptive allocator with the proposal pinned to the
  nominal size law (``importance=False``): plain Monte Carlo run to an
  explicit per-entry confidence target,
* ``adaptive`` — the same allocator and the same confidence target with
  the defensive-mixture importance proposal shifted toward the clock
  boundary,

and emits ``BENCH_sampling.json`` (the ``BENCH_*.json`` schema: one
``runs`` list of flat records plus environment metadata).  Because ``mc``
and ``adaptive`` stop at the *same* CI target, the ratio of their sample
budgets is a like-for-like measure of the variance reduction; the record
asserts it is at least 10x on every benchmarked circuit.

Interpretation notes:

* the confidence target is tail-regime (``ci_abs=2e-4``, ``ci_rel=1``):
  exactly the regime of Table 1, where the diagnosis separates suspects
  by *rare* exceedance probabilities near the diagnosis clock.  Plain MC
  pays the rule-of-three price (``3/ci_abs`` draws) for every deep-tail
  entry; the shifted proposal resolves the same entries in a few rounds,
* ranking agreement is asserted at the level of *diagnosability
  classes* (:func:`repro.core.resolution.diagnosability_classes`):
  suspects with identical signatures are provably indistinguishable, so
  raw rank order inside a class is tie-breaking noise, not information.
  For every diagnosis method the benchmark requires (a) the top-ranked
  class to be identical across all three estimators and (b) the
  injected defect's class to land inside the top-``K`` classes for the
  same set of estimators (the Table-1 outcome),
* trials are strongly diagnosable by construction (injected defect
  ranked near the top by the legacy estimator, many failing
  observations); weakly-diagnosable trials measure tie noise only,
* correctness is asserted before any number enters the record — a fast
  build that changes the diagnosis must never look like a win.

Usage: ``PYTHONPATH=src python benchmarks/bench_sampling.py [--quick]``
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.atpg import generate_path_tests
from repro.circuits import load_benchmark
from repro.core import (
    ALG_REV,
    METHOD_I,
    METHOD_II,
    METHOD_III,
    SamplerConfig,
    build_dictionary,
    diagnose,
    suspect_edges,
)
from repro.core.resolution import diagnosability_classes
from repro.defects import SingleDefectModel, draw_failing_trial
from repro.timing import (
    CircuitTiming,
    SampleSpace,
    diagnosis_clock,
    simulate_pattern_set,
)

#: (circuit, trial seed) pairs.  The seeds select strongly-diagnosable
#: trials: the injected defect ranks in the legacy top 3 with ~10 failing
#: observations, so ranking comparisons measure estimator accuracy rather
#: than tie-breaking noise on an undiagnosable instance.
CASES = (("s1196", 4), ("s1488", 7))
QUICK_CASES = (("s1196", 4),)

#: Shared confidence target for the mc / adaptive pair (see module doc).
TARGET = dict(
    mode="adaptive",
    ci_abs=2e-4,
    ci_rel=1.0,
    min_rounds=2,
    max_rounds=128,
    alpha=0.2,
    ess_floor=0.05,
)

METHODS = (
    ("method_i", METHOD_I),
    ("method_ii", METHOD_II),
    ("method_iii", METHOD_III),
    ("alg_rev", ALG_REV),
)

#: Ranking-agreement depth, in diagnosability classes.
TOP_K = 4

#: Sample-reduction floor asserted per circuit.
MIN_RATIO = 10.0


def _build_case(name: str, seed: int, n_samples: int = 120, n_paths: int = 10):
    """One strongly-diagnosable failing trial and its suspect set."""
    circuit = load_benchmark(name, seed=0)
    timing = CircuitTiming(circuit, SampleSpace(n_samples=n_samples, seed=0))
    model = SingleDefectModel(timing)
    rng = np.random.default_rng(seed)
    for _attempt in range(30):
        defect = model.draw(rng)
        patterns, _ = generate_path_tests(
            timing, defect.edge, n_paths=n_paths, rng_seed=seed
        )
        if len(patterns) >= 4:
            break
    else:
        raise RuntimeError(f"no testable defect site found on {name}")
    sims = simulate_pattern_set(timing, list(patterns))
    clk = diagnosis_clock(
        timing, list(patterns), 0.85,
        simulations=sims, targets=patterns.target_observations(),
    )
    trial, _ = draw_failing_trial(timing, patterns, clk, model, rng, defect=defect)
    suspects = suspect_edges(sims, trial.behavior)
    if defect.edge not in suspects:
        raise RuntimeError(
            f"{name} seed {seed}: injected defect pruned from the suspect set"
        )
    sizes = model.dictionary_size_variable().samples
    return dict(
        timing=timing, model=model, defect=defect, patterns=patterns,
        sims=sims, clk=clk, trial=trial, suspects=suspects, sizes=sizes,
    )


def _max_entry_gap(a, b, ceiling=None):
    """Largest |e_crt difference| between two dictionaries' entries.

    With ``ceiling`` set, only entries below it (in ``a``) participate —
    the deep-tail subset whose accuracy the absolute CI term governs.
    """
    worst = 0.0
    for edge in a.suspects:
        ea, eb = a.e_crt(edge), b.e_crt(edge)
        gap = np.abs(ea - eb)
        if ceiling is not None:
            gap = np.where(ea <= ceiling, gap, 0.0)
        worst = max(worst, float(gap.max()))
    return worst


def bench_case(name: str, seed: int):
    case = _build_case(name, seed)
    base = dict(
        circuit=name,
        trial_seed=seed,
        n_suspects=len(case["suspects"]),
        n_patterns=len(case["patterns"]),
        n_failing_observations=case["trial"].n_failing_observations,
        defect_edge=str(case["defect"].edge),
    )
    shared = dict(base_simulations=case["sims"])
    sampled = dict(
        shared, size_distribution=case["model"].dictionary_size_distribution()
    )
    configs = {
        "mc": SamplerConfig(importance=False, **TARGET),
        "adaptive": SamplerConfig(importance=True, **TARGET),
    }

    dictionaries, build_records = {}, []
    for label in ("legacy", "mc", "adaptive"):
        started = time.perf_counter()
        if label == "legacy":
            built = build_dictionary(
                case["timing"], case["patterns"], case["clk"],
                case["suspects"], case["sizes"], **shared,
            )
        else:
            built = build_dictionary(
                case["timing"], case["patterns"], case["clk"],
                case["suspects"], case["sizes"],
                sampler=configs[label], **sampled,
            )
        seconds = time.perf_counter() - started
        dictionaries[label] = built
        report = built.sampling_report
        if report is None:  # legacy: one common-random-numbers pass
            samples = len(case["sizes"]) * len(case["suspects"])
            record = dict(
                base, role="build", estimator=label, samples=samples,
                seconds=round(seconds, 6), converged=None,
                max_rounds_used=None, degenerate_rounds=None,
            )
        else:
            rounds = np.asarray(report["rounds_per_suspect"])
            record = dict(
                base, role="build", estimator=label,
                samples=int(report["total_samples"]),
                seconds=round(seconds, 6),
                converged=bool(report["all_converged"]),
                max_rounds_used=int(rounds.max()),
                degenerate_rounds=int(report["degenerate_rounds"]),
            )
        build_records.append(record)

    by_estimator = {r["estimator"]: r for r in build_records}
    assert by_estimator["mc"]["converged"], f"{name}: plain MC hit max_rounds"
    assert by_estimator["adaptive"]["converged"], (
        f"{name}: adaptive allocation hit max_rounds"
    )
    ratio = by_estimator["mc"]["samples"] / by_estimator["adaptive"]["samples"]
    assert ratio >= MIN_RATIO, (
        f"{name}: sample reduction x{ratio:.1f} below the x{MIN_RATIO:.0f} floor"
    )

    # Both sampled estimators chased the same CI target, so their entries
    # must agree to within a small multiple of it on the deep tail.
    tail_gap = _max_entry_gap(
        dictionaries["adaptive"], dictionaries["mc"], ceiling=0.01
    )
    entry_gap = _max_entry_gap(dictionaries["adaptive"], dictionaries["mc"])

    classes = diagnosability_classes(dictionaries["legacy"], tolerance=1e-9)
    cls_of = {e: i for i, group in enumerate(classes) for e in group}
    defect_class = cls_of[case["defect"].edge]

    agreement_records = []
    for method_label, method in METHODS:
        per_estimator = {}
        for label, built in dictionaries.items():
            result = diagnose(built, case["trial"].behavior, method)
            top_classes = []
            for edge, _score in result.ranking:
                marker = cls_of[edge]
                if marker not in top_classes:
                    top_classes.append(marker)
                if len(top_classes) >= TOP_K:
                    break
            per_estimator[label] = dict(
                rank=result.rank_of(case["defect"].edge),
                top_class=top_classes[0],
                defect_in_top_k=defect_class in top_classes,
            )
        top_agree = len({v["top_class"] for v in per_estimator.values()}) == 1
        outcomes = {v["defect_in_top_k"] for v in per_estimator.values()}
        assert top_agree, (
            f"{name}/{method_label}: estimators disagree on the top-ranked "
            f"diagnosability class"
        )
        assert len(outcomes) == 1, (
            f"{name}/{method_label}: estimators disagree on whether the "
            f"defect class is in the top {TOP_K}"
        )
        agreement_records.append(
            dict(
                base, role="agreement", method=method_label,
                n_classes=len(classes), top_k=TOP_K,
                defect_in_top_k=outcomes.pop(),
                **{
                    f"rank_{label}": per_estimator[label]["rank"]
                    for label in dictionaries
                },
            )
        )

    summary = dict(
        base, role="summary",
        sample_reduction=round(ratio, 2),
        legacy_samples=by_estimator["legacy"]["samples"],
        mc_samples=by_estimator["mc"]["samples"],
        adaptive_samples=by_estimator["adaptive"]["samples"],
        max_entry_gap=round(entry_gap, 6),
        max_tail_entry_gap=round(tail_gap, 6),
        n_classes=len(classes),
    )
    return build_records + agreement_records + [summary]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smallest circuit only")
    parser.add_argument(
        "--output", default=os.path.join(os.path.dirname(__file__) or ".",
                                         "BENCH_sampling.json"),
    )
    args = parser.parse_args(argv)

    cases = QUICK_CASES if args.quick else CASES
    runs = []
    for name, seed in cases:
        print(f"benchmarking {name} (trial seed {seed}) ...", flush=True)
        case_runs = bench_case(name, seed)
        runs.extend(case_runs)
        for run in case_runs:
            if run["role"] == "build":
                flag = {True: "converged", False: "MAX ROUNDS", None: ""}
                print(
                    f"  {run['estimator']:>8s}: {run['samples']:>8d} samples  "
                    f"{run['seconds']*1e3:8.1f} ms  {flag[run['converged']]}"
                )
        summary = case_runs[-1]
        print(
            f"  reduction x{summary['sample_reduction']:.1f}, tail entry gap "
            f"{summary['max_tail_entry_gap']:.2e}"
        )

    report = {
        "bench": "sampling",
        "schema_version": 1,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "config": {
            "target": dict(TARGET),
            "top_k": TOP_K,
            "min_ratio": MIN_RATIO,
            "cases": [list(case) for case in cases],
        },
        "runs": runs,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    worst = min(
        run["sample_reduction"] for run in runs if run["role"] == "summary"
    )
    print(
        f"adaptive vs plain-MC sample reduction: x{worst:.1f} worst case "
        f"(target >= x{MIN_RATIO:.0f}) OK"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
