"""Microbenchmarks of the substrate kernels.

Not paper experiments — these time the computational primitives everything
else is built from, so performance regressions in the simulator/ATPG are
caught where they happen.
"""

import numpy as np
import pytest

from repro.atpg import Justifier, generate_path_tests
from repro.circuits import load_benchmark
from repro.core import build_dictionary, suspect_edges
from repro.defects import SingleDefectModel
from repro.logic import simulate
from repro.timing import (
    CircuitTiming,
    SampleSpace,
    analyze,
    diagnosis_clock,
    simulate_pattern_set,
    simulate_transition,
)


@pytest.fixture(scope="module")
def timing():
    circuit = load_benchmark("s1196", seed=0)
    return CircuitTiming(circuit, SampleSpace(n_samples=300, seed=0))


@pytest.fixture(scope="module")
def vectors(timing):
    rng = np.random.default_rng(0)
    n = len(timing.circuit.inputs)
    return rng.integers(0, 2, n), rng.integers(0, 2, n)


def test_kernel_logic_simulation(benchmark, timing):
    """Bit-parallel logic simulation, 1024 patterns."""
    rng = np.random.default_rng(1)
    patterns = rng.integers(0, 2, size=(1024, len(timing.circuit.inputs)))
    result = benchmark(simulate, timing.circuit, patterns)
    assert result.n_patterns == 1024


def test_kernel_statistical_sta(benchmark, timing):
    """Monte-Carlo block STA over the full circuit."""
    sta = benchmark(analyze, timing)
    assert sta.circuit_delay().mean > 0


def test_kernel_dynamic_simulation(benchmark, timing, vectors):
    """Timed two-vector transition simulation (all samples at once)."""
    v1, v2 = vectors
    sim = benchmark(simulate_transition, timing, v1, v2)
    assert sim.width == timing.space.n_samples


def test_kernel_pattern_generation(benchmark, timing):
    """Path-delay ATPG for one fault site (8 paths)."""
    edge = timing.circuit.edges[300]
    patterns, _ = benchmark.pedantic(
        generate_path_tests,
        args=(timing, edge),
        kwargs=dict(n_paths=8, rng_seed=0),
        rounds=1,
        iterations=1,
    )
    assert len(patterns) >= 1


def test_kernel_dictionary_construction(benchmark, timing):
    """Probabilistic fault dictionary for a realistic suspect set."""
    rng = np.random.default_rng(2)
    model = SingleDefectModel(timing)
    defect = model.defect_at(timing.circuit.edges[300], size_mean=3.0)
    patterns, _ = generate_path_tests(timing, defect.edge, n_paths=8, rng_seed=0)
    sims = simulate_pattern_set(timing, list(patterns))
    clk = diagnosis_clock(
        timing, list(patterns), 0.85,
        simulations=sims, targets=patterns.target_observations(),
    )
    from repro.defects import behavior_matrix

    behavior = behavior_matrix(timing, patterns, clk, defect, 7)
    suspects = suspect_edges(sims, behavior)
    if not suspects:
        pytest.skip("instance did not fail; nothing to build")

    dictionary = benchmark.pedantic(
        build_dictionary,
        args=(timing, patterns, clk, suspects,
              model.dictionary_size_variable().samples),
        kwargs=dict(base_simulations=sims),
        rounds=1,
        iterations=1,
    )
    print(f"\n  suspects: {len(dictionary)}, patterns: {len(patterns)}")
    assert len(dictionary) == len(suspects)


def test_kernel_justification(benchmark, timing):
    """Two-frame PODEM on a deep objective."""
    circuit = timing.circuit
    deep = max(circuit.levels, key=circuit.levels.get)
    justifier = Justifier(circuit)

    def run():
        return justifier.justify({(deep, 0): 0, (deep, 1): 1})

    result = benchmark(run)
    assert result.success or result.backtracks > 0
