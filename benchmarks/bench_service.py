"""Wall-clock benchmark of the warm diagnosis service.

Measures the latency/throughput profile the service layer exists for —
cold first-query cost (dictionary build) versus warm steady state, warm
batched throughput in queries/sec, and the mmap-store warm start a
restarted service pays instead of a rebuild — and emits the
measurements as ``BENCH_service.json`` (the ``BENCH_*.json`` schema: one
``runs`` list of flat records plus environment metadata).

Interpretation notes:

* ``cold-first-query`` includes the full dictionary build; it is the
  price of the *first* request only and the reason the service warms at
  startup,
* ``warm-batch-N`` is the headline: queries/sec through the vectorized
  ``diagnose_batch`` kernel on an already-warm dictionary (target:
  >= 100 q/s on s1196, even single-core),
* ``store-warm-start`` maps the dictionary from a
  :class:`~repro.core.DictionaryStore` entry instead of rebuilding —
  the restart path,
* warm batch answers are asserted identical to one-shot ``diagnose``
  before any timing is reported — a fast wrong ranking must never enter
  the record.

Usage: ``PYTHONPATH=src python benchmarks/bench_service.py [--quick]``
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import tempfile
import time

import numpy as np

from repro.core import DictionaryStore, diagnose
from repro.service import (
    DiagnosisRequest,
    DiagnosisService,
    draw_query_behaviors,
    standard_workload,
)

#: The acceptance throughput floor: warm batched queries/sec on s1196.
TARGET_QPS = 100.0
BENCHMARK = "s1196"


def _requests(workload_name, behaviors, error_function):
    return [
        DiagnosisRequest(
            workload=workload_name, behavior=b, error_function=error_function
        )
        for b in behaviors
    ]


def bench_service(samples, n_paths, n_queries, batch_size, repeats,
                  error_function):
    workload, model = standard_workload(
        BENCHMARK, samples=samples, seed=0, n_paths=n_paths
    )
    behaviors = draw_query_behaviors(workload, model, n_queries, seed=1000)
    base = dict(
        circuit=BENCHMARK,
        n_suspects=len(workload.suspects),
        n_patterns=len(workload.patterns),
        n_samples=samples,
        error_function=error_function,
    )
    runs = []

    # -- cold: the first query pays the dictionary build ----------------
    cold = DiagnosisService()
    cold.register(dataclasses.replace(workload, dictionary=None))
    started = time.perf_counter()
    cold.diagnose(workload.name, behaviors[0], error_function=error_function)
    cold_seconds = time.perf_counter() - started
    runs.append(dict(base, strategy="cold-first-query", queries=1,
                     seconds=round(cold_seconds, 6)))

    # -- warm single-query latency --------------------------------------
    service = cold  # the first query warmed it
    best = float("inf")
    for _repeat in range(repeats):
        started = time.perf_counter()
        service.diagnose(
            workload.name, behaviors[0], error_function=error_function
        )
        best = min(best, time.perf_counter() - started)
    runs.append(dict(base, strategy="warm-single-query", queries=1,
                     seconds=round(best, 6)))

    # -- warm batched throughput (the headline) -------------------------
    requests = _requests(workload.name, behaviors, error_function)
    answers = None
    best = float("inf")
    for _repeat in range(repeats):
        started = time.perf_counter()
        answers = []
        for start in range(0, len(requests), batch_size):
            answers.extend(
                service.diagnose_batch(requests[start:start + batch_size])
            )
        best = min(best, time.perf_counter() - started)
    # a fast wrong ranking must never enter the record
    dictionary = service.workload(workload.name).dictionary
    for behavior, answer in zip(behaviors[:5], answers[:5]):
        from repro.core.error_functions import by_name

        reference = diagnose(
            dictionary, behavior, error_function=by_name(error_function)
        )
        assert answer.ranking == reference.ranking, "batched answer diverged"
    runs.append(dict(
        base, strategy=f"warm-batch-{batch_size}", queries=len(requests),
        seconds=round(best, 6),
    ))

    # -- restart path: mmap the dictionary from a store -----------------
    with tempfile.TemporaryDirectory() as store_dir:
        store = DictionaryStore(store_dir)
        seeded = DiagnosisService(cache=store)
        seeded.register(dataclasses.replace(workload, dictionary=None))
        seeded.warm(workload.name)  # builds once, publishes to the store
        assert store.stats.stores == 1

        restarted = DiagnosisService(cache=store)
        restarted.register(dataclasses.replace(workload, dictionary=None))
        started = time.perf_counter()
        restarted.warm(workload.name)
        warm_start_seconds = time.perf_counter() - started
        assert store.stats.hits >= 1, "restart did not hit the store"
        runs.append(dict(base, strategy="store-warm-start", queries=0,
                         seconds=round(warm_start_seconds, 6)))

    for run in runs:
        run["qps"] = (
            round(run["queries"] / run["seconds"], 1)
            if run["queries"] and run["seconds"] > 0 else None
        )
    return runs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer samples and queries (CI smoke)")
    parser.add_argument("--samples", type=int, default=300)
    parser.add_argument("--paths", type=int, default=8)
    parser.add_argument("--queries", type=int, default=256)
    parser.add_argument("--batch", type=int, default=32)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--error-function", default="alg_rev")
    parser.add_argument(
        "--output", default=os.path.join(os.path.dirname(__file__) or ".",
                                         "BENCH_service.json"),
    )
    args = parser.parse_args(argv)

    samples = min(args.samples, 120) if args.quick else args.samples
    n_queries = min(args.queries, 64) if args.quick else args.queries
    print(f"benchmarking the diagnosis service on {BENCHMARK} "
          f"({samples} samples, {n_queries} queries) ...", flush=True)
    runs = bench_service(
        samples=samples, n_paths=args.paths, n_queries=n_queries,
        batch_size=args.batch, repeats=args.repeats,
        error_function=args.error_function,
    )
    for run in runs:
        qps = f"{run['qps']:10.1f} q/s" if run["qps"] else " " * 14
        print(f"  {run['strategy']:>18s}: {run['seconds']*1e3:9.1f} ms  {qps}")

    report = {
        "bench": "diagnosis_service",
        "schema_version": 1,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "config": {
            "circuit": BENCHMARK,
            "samples": samples,
            "paths": args.paths,
            "queries": n_queries,
            "batch": args.batch,
            "repeats": args.repeats,
            "error_function": args.error_function,
        },
        "runs": runs,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    headline = next(r for r in runs if r["strategy"].startswith("warm-batch"))
    status = "OK" if headline["qps"] >= TARGET_QPS else "BELOW TARGET"
    print(f"warm batched throughput on {BENCHMARK}: {headline['qps']:.1f} q/s "
          f"(target >= {TARGET_QPS:.0f} q/s) {status}")
    return 0 if headline["qps"] >= TARGET_QPS else 1


if __name__ == "__main__":
    raise SystemExit(main())
