"""Wall-clock benchmark of parallel + cached dictionary construction.

Runs the probabilistic-fault-dictionary build on ISCAS89-class circuits
under every execution strategy — serial, process pool at several worker
counts, and a warm on-disk cache — and emits the measurements as
``BENCH_parallel.json`` (the ``BENCH_*.json`` schema: one ``runs`` list of
flat records plus environment metadata), so the performance trajectory of
the hot path is recorded run over run.

Interpretation notes:

* process-pool speedup is bounded by physical cores; the emitted
  ``cpu_count`` field says how many this host actually had (on a 1-core
  container the parallel rows measure pure overhead, by design),
* the cache row measures a warm hit, i.e. the steady state of clock
  sweeps and repeated diagnoses over the same model,
* hierarchical rows (``--hier`` equivalent: block-sharded chunks plus
  block-truncated replay) report ``n_chunks`` next to the flat rows'
  auto-chunk count — the coarse-shard story ``BENCH_hier.json`` tells in
  full,
* results are asserted bit-identical across all strategies before any
  timing is reported — a fast wrong build must never enter the record.

Exit status: on a multi-core host (``cpu_count >= 2``) the run **fails**
(exit 1) if the block-sharded process backend loses to serial on the
largest benchmarked circuit — the regression this benchmark exists to
catch.  Single-core hosts report the ratio without gating.

Usage: ``PYTHONPATH=src python benchmarks/bench_parallel.py [--quick]``
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

import numpy as np

from repro.atpg import generate_path_tests
from repro.circuits import load_benchmark
from repro.core import (
    DictionaryCache,
    ParallelConfig,
    build_dictionary,
    chunk_indices,
    suspect_edges,
)
from repro.hier import block_chunks, partition_circuit
from repro.defects import SingleDefectModel, behavior_matrix
from repro.timing import (
    CircuitTiming,
    SampleSpace,
    diagnosis_clock,
    simulate_pattern_set,
)

#: Circuits ordered small to large; the last entry is the headline number.
CIRCUITS = ("s1196", "s1488", "s5378")
QUICK_CIRCUITS = ("s1196",)
WORKER_COUNTS = (2, 4)


def _build_case(name: str, n_samples: int, n_paths: int, seed: int):
    """One realistic diagnosis problem: a failing chip and its suspects."""
    circuit = load_benchmark(name, seed=seed)
    timing = CircuitTiming(circuit, SampleSpace(n_samples=n_samples, seed=seed))
    model = SingleDefectModel(timing)
    rng = np.random.default_rng(seed)
    for _attempt in range(20):
        defect = model.draw(rng)
        patterns, _ = generate_path_tests(
            timing, defect.edge, n_paths=n_paths, rng_seed=seed
        )
        if len(patterns):
            break
    else:
        raise RuntimeError(f"no testable defect site found on {name}")
    sims = simulate_pattern_set(timing, list(patterns))
    clk = diagnosis_clock(
        timing, list(patterns), 0.85,
        simulations=sims, targets=patterns.target_observations(),
    )
    behavior = behavior_matrix(timing, patterns, clk, defect, 3)
    suspects = suspect_edges(sims, behavior)
    if len(suspects) < 8:
        # A barely-failing instance prunes too hard to exercise the fan-out;
        # widen to every edge feeding the defect's output cone instead.
        cone = set(timing.circuit.fanout_cone(defect.edge.sink))
        suspects = [e for e in timing.circuit.edges if e.sink in cone][:200]
    sizes = model.dictionary_size_variable().samples
    return timing, patterns, clk, suspects, sizes, sims


def _identical(a, b) -> bool:
    return np.array_equal(a.m_crt, b.m_crt) and all(
        np.array_equal(a.signatures[e], b.signatures[e]) for e in a.suspects
    )


def bench_circuit(name: str, n_samples: int, n_paths: int, repeats: int):
    timing, patterns, clk, suspects, sizes, sims = _build_case(
        name, n_samples=n_samples, n_paths=n_paths, seed=0
    )
    work_per_item = len(patterns) * n_samples
    graph = partition_circuit(timing.circuit)
    flat_chunks = len(
        chunk_indices(len(suspects), None, 2, work_per_item=work_per_item)
    )
    hier_chunks = len(block_chunks(graph, suspects, work_per_item))
    base = dict(
        circuit=name,
        n_edges=len(timing.circuit.edges),
        n_suspects=len(suspects),
        n_patterns=len(patterns),
        n_samples=n_samples,
        n_blocks=graph.n_blocks,
        flat_chunks=flat_chunks,
        hier_chunks=hier_chunks,
    )
    runs = []

    def timed(label, backend, workers, **kwargs):
        best = float("inf")
        result = None
        for _repeat in range(repeats):
            started = time.perf_counter()
            result = build_dictionary(
                timing, patterns, clk, suspects, sizes,
                base_simulations=sims, **kwargs,
            )
            best = min(best, time.perf_counter() - started)
        runs.append(
            dict(base, strategy=label, backend=backend, workers=workers,
                 seconds=round(best, 6))
        )
        return result

    reference = timed("serial", "serial", 1)
    for workers in WORKER_COUNTS:
        parallel = timed(
            f"process-{workers}", "process", workers,
            parallel=ParallelConfig(backend="process", n_workers=workers),
        )
        assert _identical(reference, parallel), "parallel build diverged"
    hier = timed(
        "process-2-hier", "process", 2,
        parallel=ParallelConfig(backend="process", n_workers=2),
        hier=True,
    )
    assert _identical(reference, hier), "hierarchical build diverged"

    with tempfile.TemporaryDirectory() as cache_dir:
        cache = DictionaryCache(cache_dir)
        build_dictionary(  # cold store
            timing, patterns, clk, suspects, sizes,
            base_simulations=sims, cache=cache,
        )
        warm = timed("cache-hit", "cache", 1, cache=cache)
        assert cache.hits >= 1, "warm run did not hit the cache"
        assert _identical(reference, warm), "cached build diverged"

    serial_seconds = runs[0]["seconds"]
    for run in runs:
        run["speedup"] = round(serial_seconds / run["seconds"], 3)
    return runs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smallest circuit only, fewer samples")
    parser.add_argument("--samples", type=int, default=300)
    parser.add_argument("--paths", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--output", default=os.path.join(os.path.dirname(__file__) or ".",
                                         "BENCH_parallel.json"),
    )
    args = parser.parse_args(argv)

    circuits = QUICK_CIRCUITS if args.quick else CIRCUITS
    samples = min(args.samples, 150) if args.quick else args.samples
    runs = []
    for name in circuits:
        print(f"benchmarking {name} ...", flush=True)
        circuit_runs = bench_circuit(
            name, n_samples=samples, n_paths=args.paths, repeats=args.repeats
        )
        runs.extend(circuit_runs)
        for run in circuit_runs:
            print(
                f"  {run['strategy']:>10s}: {run['seconds']*1e3:9.1f} ms  "
                f"(x{run['speedup']:.2f}, suspects={run['n_suspects']})"
            )

    report = {
        "bench": "parallel_dictionary",
        "schema_version": 1,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "config": {
            "samples": samples,
            "paths": args.paths,
            "repeats": args.repeats,
            "circuits": list(circuits),
        },
        "runs": runs,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    largest = circuits[-1]
    four = [r for r in runs
            if r["circuit"] == largest and r["strategy"] == "process-4"]
    if four and (os.cpu_count() or 1) >= 4:
        status = "OK" if four[0]["speedup"] >= 2.0 else "BELOW TARGET"
        print(f"process-4 on {largest}: x{four[0]['speedup']:.2f} "
              f"(target >= x2.0) {status}")
    elif four:
        print(
            f"process-4 on {largest}: x{four[0]['speedup']:.2f} — host has "
            f"{os.cpu_count()} CPU(s); the >=2x scaling target needs >= 4 cores"
        )

    hier_row = [r for r in runs
                if r["circuit"] == largest and r["strategy"] == "process-2-hier"]
    if hier_row:
        speedup = hier_row[0]["speedup"]
        chunk_note = (
            f"chunks flat={hier_row[0]['flat_chunks']} "
            f"hier={hier_row[0]['hier_chunks']}"
        )
        if (os.cpu_count() or 1) >= 2:
            if speedup <= 1.0:
                print(
                    f"FAIL: block-sharded process backend lost to serial on "
                    f"{largest} (x{speedup:.2f}, {chunk_note})"
                )
                return 1
            print(f"process-2-hier on {largest}: x{speedup:.2f} "
                  f"({chunk_note}) OK")
        else:
            print(
                f"process-2-hier on {largest}: x{speedup:.2f} ({chunk_note}) "
                f"— single-CPU host, the beats-serial gate needs >= 2 cores"
            )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
