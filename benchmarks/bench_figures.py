"""Benchmark: regenerate the data behind the paper's Figures 1-3.

Each benchmark reruns one figure experiment and asserts the figure's claim
(see :mod:`repro.experiments.figures` for what each one demonstrates).
"""

import numpy as np

from repro.experiments import (
    figure1_case_a,
    figure1_case_b,
    figure2_data,
    figure3_data,
)


def test_figure1_case_a(benchmark):
    """Same fault via long vs short path: critical probability curves."""
    data = benchmark(figure1_case_a, n_samples=1500, seed=0)
    print()
    for size, long_p, short_p in zip(
        data["defect_sizes"], data["crt_long"], data["crt_short"]
    ):
        print(f"  defect size {size:4.2f}: crt(long-path test) {long_p:.3f}  "
              f"crt(short-path test) {short_p:.3f}")
    assert data["crt_long"][-1] > 0.9
    assert data["crt_short"][0] < 0.05
    assert all(a >= b for a, b in zip(data["crt_long"], data["crt_short"]))


def test_figure1_case_b(benchmark):
    """Merging paths: max() dominance makes faults timing-distinguishable."""
    data = benchmark(figure1_case_b, n_samples=1500, seed=0)
    print()
    for key, value in data.items():
        print(f"  {key}: {value:.3f}")
    assert data["prob_long_dominates"] == 1.0
    assert data["crt_defect_on_long"] > 0.9
    assert abs(data["crt_defect_on_short"] - data["crt_healthy"]) < 0.05


def test_figure2(benchmark):
    """The dictionary-matching ambiguity on the paper's exact matrices."""
    data = benchmark(figure2_data)
    print()
    print(f"  ones-matching winner : {data['ones_matching']['winner']}")
    print(f"  zeros-matching winner: {data['zeros_matching']['winner']}")
    for name, verdict in data["error_function_verdicts"].items():
        print(f"  {name}: {verdict}")
    assert data["ones_matching"]["winner"] == "fault1"
    assert data["zeros_matching"]["winner"] == "fault2"


def test_figure3(benchmark):
    """Equivalence-checking error model == Alg_rev's minimization."""
    rng = np.random.default_rng(7)
    behavior = rng.integers(0, 2, (4, 6))
    signatures = {f"candidate_{i}": rng.uniform(0, 1, (4, 6)) for i in range(8)}

    data = benchmark(figure3_data, signatures, behavior)
    print()
    print(f"  best candidate: {data['best']} "
          f"(error {data['best_error']:.4f})")
    errors = {
        name: entry["euclidean_error"]
        for name, entry in data["candidates"].items()
    }
    assert data["best"] == min(errors, key=errors.get)
    for entry in data["candidates"].values():
        assert entry["euclidean_error"] == entry["alg_rev_score"]
