"""Wall-clock benchmark of the compiled dynamic-timing kernel.

Builds the multi-clock probabilistic fault dictionary — the innermost
loop of clock-sweep diagnosis, thousands of cone-restricted
re-simulations — on ISCAS89-class circuits at **full scale** under both
timing kernels (``reference``: per-gate Python dicts; ``compiled``:
levelized ``reduceat`` array schedules) and emits the measurements as
``BENCH_dynamic.json`` (the ``BENCH_*.json`` schema: one ``runs`` list of
flat records plus environment metadata).

Interpretation notes:

* each kernel builds its *own* base simulations before timing starts —
  feeding one kernel's bases to the other would bill the Mapping-view
  adaptation cost to the wrong side,
* the reference kernel pays an intrinsic O(n_nets) settle-map copy per
  re-simulation, so the speedup grows with circuit size; the last
  (largest) circuit is the headline number with a >= 5x target,
* results are asserted bit-identical across kernels before any timing is
  reported — a fast wrong kernel must never enter the record.

Usage: ``PYTHONPATH=src python benchmarks/bench_dynamic.py [--quick]``
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.atpg import generate_path_tests
from repro.circuits import load_benchmark
from repro.core import build_multi_clock_dictionary
from repro.timing import (
    CircuitTiming,
    SampleSpace,
    diagnosis_clock,
    simulate_pattern_set,
)

#: (name, scale, n_samples, n_patterns) small to large; ``scale=1.0``
#: forces the full-size netlist (the registry's default scale shrinks the
#: big circuits so that pure-Python experiments stay tractable — exactly
#: the cost this kernel removes). The last entry is the headline number.
CIRCUITS = (
    ("s1196", None, 256, 24),
    ("s5378", 1.0, 256, 32),
    ("s15850", 1.0, 128, 48),
)
QUICK_CIRCUITS = (("s1196", None, 128, 12),)
KERNELS = ("reference", "compiled")
SPEEDUP_TARGET = 5.0

#: Every 173rd edge as a path-test target spreads patterns over the whole
#: netlist instead of one defect cone, so suspect activity is realistic.
SITE_STRIDE = 173


def _patterns_for(circuit, timing, want: int):
    """Accumulate path-test pairs from strided target sites until ``want``."""
    patterns = None
    for site in circuit.edges[::SITE_STRIDE]:
        extra, _paths = generate_path_tests(timing, site, n_paths=4, rng_seed=5)
        if patterns is None:
            patterns = extra
        else:
            for index in range(len(extra)):
                try:
                    patterns.append(
                        extra.pairs[index][0],
                        extra.pairs[index][1],
                        extra.sources[index],
                    )
                except ValueError:
                    pass  # duplicate pair — already covered
        if patterns is not None and len(patterns) >= want:
            break
    if patterns is None or not len(patterns):
        raise RuntimeError("no path tests found")
    return patterns


def _identical(a, b) -> bool:
    return np.array_equal(a.m_crt, b.m_crt) and all(
        np.array_equal(a.signatures[e], b.signatures[e]) for e in a.suspects
    )


def bench_circuit(name, scale, n_samples, n_patterns, repeats):
    circuit = load_benchmark(name, seed=1, scale=scale)
    timing = CircuitTiming(circuit, SampleSpace(n_samples=n_samples, seed=7))
    patterns = _patterns_for(circuit, timing, n_patterns)
    suspects = list(circuit.edges)
    sizes = np.full(n_samples, 0.9)

    base = dict(
        circuit=name,
        scale=scale if scale is not None else "default",
        n_gates=len(circuit.gates),
        n_edges=len(circuit.edges),
        n_suspects=len(suspects),
        n_patterns=len(patterns),
        n_samples=n_samples,
    )
    runs, results = [], {}
    for kernel in KERNELS:
        os.environ["REPRO_TIMING_KERNEL"] = kernel
        # Base simulations are rebuilt under the kernel being measured so
        # neither side re-simulates against foreign settle-time containers.
        sims = simulate_pattern_set(timing, list(patterns))
        clk = diagnosis_clock(
            timing, list(patterns), 0.85,
            simulations=sims, targets=patterns.target_observations(),
        )
        best = float("inf")
        for _repeat in range(repeats):
            started = time.perf_counter()
            result = build_multi_clock_dictionary(
                timing, patterns, [clk, clk * 1.02], suspects, sizes,
                base_simulations=sims,
            )
            best = min(best, time.perf_counter() - started)
        results[kernel] = result
        runs.append(dict(base, kernel=kernel, seconds=round(best, 6)))

    assert _identical(results["reference"], results["compiled"]), (
        f"{name}: compiled dictionary diverged from reference"
    )
    reference_seconds = runs[0]["seconds"]
    for run in runs:
        run["speedup"] = round(reference_seconds / run["seconds"], 3)
    return runs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smallest circuit only, fewer samples")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--output", default=os.path.join(os.path.dirname(__file__) or ".",
                                         "BENCH_dynamic.json"),
    )
    args = parser.parse_args(argv)

    previous = os.environ.get("REPRO_TIMING_KERNEL")
    circuits = QUICK_CIRCUITS if args.quick else CIRCUITS
    runs = []
    try:
        for name, scale, n_samples, n_patterns in circuits:
            print(f"benchmarking {name} ...", flush=True)
            circuit_runs = bench_circuit(
                name, scale, n_samples, n_patterns, repeats=args.repeats
            )
            runs.extend(circuit_runs)
            for run in circuit_runs:
                print(
                    f"  {run['kernel']:>10s}: {run['seconds']*1e3:9.1f} ms  "
                    f"(x{run['speedup']:.2f}, suspects={run['n_suspects']}, "
                    f"patterns={run['n_patterns']})"
                )
    finally:
        if previous is None:
            os.environ.pop("REPRO_TIMING_KERNEL", None)
        else:
            os.environ["REPRO_TIMING_KERNEL"] = previous

    report = {
        "bench": "dynamic_kernel",
        "schema_version": 1,
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
        "config": {
            "repeats": args.repeats,
            "circuits": [c[0] for c in circuits],
            "speedup_target": SPEEDUP_TARGET,
        },
        "runs": runs,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")

    largest = circuits[-1][0]
    headline = [r for r in runs
                if r["circuit"] == largest and r["kernel"] == "compiled"]
    if headline:
        speedup = headline[0]["speedup"]
        status = "OK" if speedup >= SPEEDUP_TARGET else "BELOW TARGET"
        print(f"compiled kernel on {largest}: x{speedup:.2f} "
              f"(target >= x{SPEEDUP_TARGET:.1f}) {status}")
        if not args.quick and speedup < SPEEDUP_TARGET:
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
